"""Version intervals: which versions a fact was present in.

The paper's concluding question (Section 6): *can the constructed
alignments be used to construct compact representations of all versions of
an RDF database?*  Its proposed device is "to decorate triples with
intervals that represent versions where the triple was present".  This
module provides that decoration: a set of versions stored as sorted,
disjoint, inclusive ``[start, end]`` ranges.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class VersionInterval:
    """A sorted set of version numbers, stored as disjoint ranges."""

    __slots__ = ("_ranges",)

    def __init__(self, versions: Iterable[int] = ()) -> None:
        self._ranges: list[tuple[int, int]] = []
        for version in sorted(set(versions)):
            self.add(version)

    # ------------------------------------------------------------------
    def add(self, version: int) -> None:
        """Insert one version, merging adjacent ranges."""
        ranges = self._ranges
        for index, (start, end) in enumerate(ranges):
            if start <= version <= end:
                return
            if version == start - 1:
                ranges[index] = (version, end)
                self._coalesce(index)
                return
            if version == end + 1:
                ranges[index] = (start, version)
                self._coalesce(index)
                return
            if version < start:
                ranges.insert(index, (version, version))
                return
        ranges.append((version, version))

    def _coalesce(self, index: int) -> None:
        ranges = self._ranges
        # Merge with the previous range if they now touch.
        if index > 0 and ranges[index - 1][1] + 1 >= ranges[index][0]:
            previous_start = ranges[index - 1][0]
            ranges[index - 1] = (previous_start, max(ranges[index - 1][1], ranges[index][1]))
            del ranges[index]
            index -= 1
        if index + 1 < len(ranges) and ranges[index][1] + 1 >= ranges[index + 1][0]:
            ranges[index] = (ranges[index][0], max(ranges[index][1], ranges[index + 1][1]))
            del ranges[index + 1]

    # ------------------------------------------------------------------
    def __contains__(self, version: int) -> bool:
        return any(start <= version <= end for start, end in self._ranges)

    def __iter__(self) -> Iterator[int]:
        for start, end in self._ranges:
            yield from range(start, end + 1)

    def __len__(self) -> int:
        return sum(end - start + 1 for start, end in self._ranges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionInterval) and self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(tuple(self._ranges))

    @property
    def ranges(self) -> list[tuple[int, int]]:
        """The disjoint inclusive ranges, sorted."""
        return list(self._ranges)

    @property
    def range_count(self) -> int:
        """Number of ranges — the storage cost of the decoration."""
        return len(self._ranges)

    def is_contiguous(self) -> bool:
        """One unbroken range (the common case the paper expects)."""
        return len(self._ranges) <= 1

    def first(self) -> int:
        if not self._ranges:
            raise ValueError("empty interval")
        return self._ranges[0][0]

    def last(self) -> int:
        if not self._ranges:
            raise ValueError("empty interval")
        return self._ranges[-1][1]

    def __repr__(self) -> str:
        ranges = ", ".join(
            f"{start}" if start == end else f"{start}-{end}"
            for start, end in self._ranges
        )
        return f"VersionInterval[{ranges}]"
