"""Compact multi-version archives (the paper's Section 6 future work)."""

from .builder import ArchiveStats, EntityId, VersionArchive
from .intervals import VersionInterval

__all__ = ["ArchiveStats", "EntityId", "VersionArchive", "VersionInterval"]
