"""Tolerant append to ``results/bench.json``-style timing logs.

Dependency-free on purpose: both the benchmark harness
(``benchmarks/conftest.py::record_bench``) and the differential
oracle's CI entry point (:mod:`repro.testing.differential`) append to
the same performance-trajectory file, and a timing side channel must
never be able to crash the session producing it — so this module
imports nothing but the standard library (plus the equally
dependency-free :mod:`repro.io.atomic` writer), and the append treats
every form of bad state (missing file, corrupt JSON, wrong shape,
directory squatting on the path, unwritable target) as recoverable.
"""

from __future__ import annotations

import json
import os

from .io.atomic import atomic_write_text


def append_bench_entry(
    path: str | os.PathLike, name: str, seconds: float,
    speedup: float | None = None,
    baseline_seconds: float | None = None,
    jobs: int | None = None,
    cpus: int | None = None,
    k: int | None = None,
) -> bool:
    """Append one ``{"name", "seconds", "speedup"}`` row to *path*.

    Comparison benches may also record the context their ratio was
    measured in — ``baseline_seconds`` (the jobs=1 denominator),
    ``jobs``, ``cpus`` and the signature round bound ``k`` — so
    trajectory tooling can tell "slower
    machine" from "real regression".  The extra keys are additive: rows
    without them keep the historical three-key shape, so old readers
    keep working.

    A missing, corrupt or wrong-shaped file is replaced by a fresh list
    (non-dict entries are dropped), and an unreadable/unwritable target
    is reported by returning ``False`` rather than raised.
    """
    entries: list = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, list):
            entries = [entry for entry in loaded if isinstance(entry, dict)]
    except (OSError, ValueError):
        pass
    entry = {
        "name": name,
        "seconds": round(float(seconds), 6),
        "speedup": None if speedup is None else round(float(speedup), 3),
    }
    if baseline_seconds is not None:
        entry["baseline_seconds"] = round(float(baseline_seconds), 6)
    if jobs is not None:
        entry["jobs"] = int(jobs)
    if cpus is not None:
        entry["cpus"] = int(cpus)
    if k is not None:
        entry["k"] = int(k)
    entries.append(entry)
    try:
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Atomic rewrite (temp + fsync + rename): a run killed mid-append
        # must never truncate the whole performance trajectory.
        atomic_write_text(path, json.dumps(entries, indent=2) + "\n")
    except OSError:
        return False
    return True
