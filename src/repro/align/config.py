"""Composable, validated alignment configuration.

One frozen :class:`AlignConfig` object replaces the ``method= / theta= /
engine= / splitter= / probe= / jobs=`` keyword fan-out that used to be
re-threaded by hand through the CLI, every figure experiment and the
version store.  Build it once, derive variants with :meth:`AlignConfig.
evolve`, and pass the object down.

Validation is strict and happens at construction: an unknown method or
engine, a theta outside ``[0, 1]``, a bad probe rule or a negative jobs
count raise the :class:`~repro.exceptions.AlignError` hierarchy instead
of failing somewhere deep in a run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..exceptions import (
    ConfigError,
    ThresholdError,
)
from ..similarity.string_distance import character_set, qgrams, split_words

#: The named literal characterizers for the overlap method; a config may
#: reference them by name (the CLI does) or pass any callable directly.
SPLITTERS: dict[str, Callable[[str], frozenset]] = {
    "words": split_words,
    "chars": character_set,
    "qgrams": qgrams,
}

#: Prefix-probe rules of the overlap heuristic (see DESIGN.md §5.4).
PROBE_RULES: tuple[str, ...] = ("paper", "safe")

_FIELD_NAMES: frozenset[str] | None = None


@dataclass(frozen=True)
class AlignConfig:
    """A validated, immutable description of how to align two versions.

    Parameters
    ----------
    method:
        A method name from the registry (:mod:`repro.align.registry`) —
        one of the paper's family ``trivial``/``deblank``/``hybrid``/
        ``overlap``, a baseline such as ``similarity_flooding``, or any
        third-party method registered via ``register_method``.
    theta:
        Similarity threshold of the overlap method, in ``[0, 1]``.
    engine:
        Refinement implementation: ``"reference"`` or ``"dense"``.
    probe:
        Prefix-probe rule of the overlap heuristic (``"paper"``/``"safe"``).
    splitter:
        Literal characterizer for the overlap method: a callable
        ``str -> frozenset`` or one of the names in :data:`SPLITTERS`
        (names are resolved at construction).
    jobs:
        Worker processes for batch/experiment execution (``0`` = one per
        CPU, ``1`` = serial).  Never affects results, only wall-clock.
    k:
        Round bound of the hash-signature k-bisimulation family
        (``kbisim``/``kbisim_deblank``): the partition refines for at
        most ``k`` rounds, stopping early once it stabilizes.  ``k=0``
        is the label partition; any ``k`` at or above the graph's
        diameter reproduces the full bisimulation fixpoint.  Ignored by
        every other method.
    incremental:
        When ``True``, :meth:`~repro.align.session.Aligner.align_chain`
        maintains each version's deblanking fixpoint from its
        predecessor's under the chain's deltas
        (:mod:`repro.core.maintain`) instead of refining every pair from
        scratch.  Never affects results, only wall-clock — the
        differential oracle's incremental axis pins byte-identical
        reports.
    backend:
        Path of a persisted version-store archive
        (:mod:`repro.experiments.persist`).  When set, figure
        experiments *load* their :class:`~repro.experiments.store.
        VersionStore` from the archive instead of regenerating the
        dataset — byte-identical results, restart-surviving artifacts.
        ``None`` (the default) keeps everything in memory.
    retries:
        Retry budget for transient execution failures (worker crashes,
        transient backend I/O errors, pool start failures): the number
        of *re*-tries, so ``retries + 1`` attempts total before the
        runner degrades to serial in-process execution.  Never affects
        results, only resilience — the differential oracle's faults
        axis pins byte-identical reports under injected faults.
    cell_timeout:
        Seconds a single experiment cell may run in a pool worker
        before the parent kills the pool and retries (``None`` = no
        timeout).  Also guards the autotune overhead probe.
    verify_checksums:
        When ``True`` (default), :class:`~repro.experiments.persist.
        DiskBackend` verifies each block's CRC32 + byte count against
        the manifest on every read, raising
        :class:`~repro.exceptions.CorruptStoreError` on mismatch;
        ``False`` skips verification (trusted local archives).
    """

    method: str = "hybrid"
    theta: float = 0.65
    engine: str = "reference"
    probe: str = "paper"
    splitter: Callable[[str], frozenset] = split_words
    jobs: int = 1
    k: int = 3
    incremental: bool = False
    backend: str | None = None
    retries: int = 2
    cell_timeout: float | None = None
    verify_checksums: bool = True

    def __post_init__(self) -> None:
        from ..core.dense import resolve_refine_engine
        from .registry import get_method

        get_method(self.method)  # UnknownMethodError on a bad name
        resolve_refine_engine(self.engine)  # UnknownEngineError likewise
        if isinstance(self.theta, bool) or not isinstance(self.theta, (int, float)):
            raise ThresholdError(f"theta must be a number, got {self.theta!r}")
        if not 0.0 <= self.theta <= 1.0:
            raise ThresholdError(
                f"theta must be within [0, 1], got {self.theta!r}"
            )
        if self.probe not in PROBE_RULES:
            raise ConfigError(
                f"unknown probe rule {self.probe!r}; expected one of {PROBE_RULES}"
            )
        if isinstance(self.splitter, str):
            try:
                resolved = SPLITTERS[self.splitter]
            except KeyError:
                raise ConfigError(
                    f"unknown splitter {self.splitter!r}; "
                    f"expected one of {tuple(sorted(SPLITTERS))} or a callable"
                ) from None
            object.__setattr__(self, "splitter", resolved)
        elif not callable(self.splitter):
            raise ConfigError(
                f"splitter must be callable or a name from "
                f"{tuple(sorted(SPLITTERS))}, got {self.splitter!r}"
            )
        if isinstance(self.jobs, bool) or not isinstance(self.jobs, int):
            raise ConfigError(f"jobs must be an integer, got {self.jobs!r}")
        if self.jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {self.jobs!r}")
        if isinstance(self.k, bool) or not isinstance(self.k, int):
            raise ConfigError(f"k must be an integer, got {self.k!r}")
        if self.k < 0:
            raise ConfigError(f"k must be >= 0, got {self.k!r}")
        if not isinstance(self.incremental, bool):
            raise ConfigError(
                f"incremental must be a boolean, got {self.incremental!r}"
            )
        if self.backend is not None:
            import os

            if isinstance(self.backend, os.PathLike):
                object.__setattr__(self, "backend", os.fspath(self.backend))
            elif not isinstance(self.backend, str):
                raise ConfigError(
                    f"backend must be a path string or None, got {self.backend!r}"
                )
        if isinstance(self.retries, bool) or not isinstance(self.retries, int):
            raise ConfigError(f"retries must be an integer, got {self.retries!r}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries!r}")
        if self.cell_timeout is not None:
            if isinstance(self.cell_timeout, bool) or not isinstance(
                    self.cell_timeout, (int, float)):
                raise ConfigError(
                    f"cell_timeout must be a number or None, got {self.cell_timeout!r}"
                )
            if self.cell_timeout <= 0:
                raise ConfigError(
                    f"cell_timeout must be positive or None, got {self.cell_timeout!r}"
                )
        if not isinstance(self.verify_checksums, bool):
            raise ConfigError(
                f"verify_checksums must be a boolean, got {self.verify_checksums!r}"
            )

    # ------------------------------------------------------------------
    def evolve(self, **changes: object) -> "AlignConfig":
        """A new config with *changes* applied (and re-validated).

        >>> AlignConfig().evolve(method="overlap", theta=0.5).theta
        0.5
        """
        global _FIELD_NAMES
        if _FIELD_NAMES is None:
            _FIELD_NAMES = frozenset(f.name for f in dataclasses.fields(AlignConfig))
        unknown = set(changes) - _FIELD_NAMES
        if unknown:
            raise ConfigError(
                f"unknown config field(s) {tuple(sorted(unknown))}; "
                f"expected a subset of {tuple(sorted(_FIELD_NAMES))}"
            )
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    @property
    def splitter_name(self) -> str:
        """The splitter's registry name, or its ``__name__`` for customs."""
        for name, callable_ in SPLITTERS.items():
            if self.splitter is callable_:
                return name
        return getattr(self.splitter, "__name__", repr(self.splitter))

    def to_dict(self) -> dict:
        """A JSON-friendly rendering (the splitter by name)."""
        return {
            "method": self.method,
            "theta": self.theta,
            "engine": self.engine,
            "probe": self.probe,
            "splitter": self.splitter_name,
            "jobs": self.jobs,
            "k": self.k,
            "incremental": self.incremental,
            "backend": self.backend,
            "retries": self.retries,
            "cell_timeout": self.cell_timeout,
            "verify_checksums": self.verify_checksums,
        }
