"""The alignment session API: configs, registry, sessions, reports.

The public surface of this package::

    from repro.align import AlignConfig, Aligner

    aligner = Aligner(AlignConfig(method="overlap", engine="dense"))
    result = aligner.align("v1.nt", "v2.nt")
    aligner.report(v1, v2).save("report.json")

* :class:`AlignConfig` — a frozen, validated configuration with
  :meth:`~AlignConfig.evolve` for derived variants;
* :class:`Aligner` — a reusable session holding a config plus per-source
  cached state (CSR blocks, memoized literal splits, parsed files);
* :class:`MethodSpec` / :func:`register_method` — the pluggable method
  registry every method list in the system derives from;
* :class:`AlignmentReport` — the stable, versioned, serializable result
  schema (``to_json``/``from_json`` round-trip).

The legacy one-shot functions :func:`repro.align_versions` and
:func:`repro.align_many` remain available as a thin facade over this
package.
"""

from .config import PROBE_RULES, SPLITTERS, AlignConfig
from .methods import MethodContext, run_method
from .registry import (
    MethodSpec,
    get_method,
    iter_methods,
    method_names,
    method_order,
    refines,
    register_method,
    unregister_method,
)
from .report import SCHEMA, SCHEMA_VERSION, AlignmentReport
from .results import AlignmentResult, BaselineResult, PairAlignment
from .session import Aligner

__all__ = [
    "AlignConfig",
    "Aligner",
    "AlignmentReport",
    "AlignmentResult",
    "BaselineResult",
    "MethodContext",
    "MethodSpec",
    "PROBE_RULES",
    "PairAlignment",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SPLITTERS",
    "get_method",
    "iter_methods",
    "method_names",
    "method_order",
    "refines",
    "register_method",
    "run_method",
    "unregister_method",
]
