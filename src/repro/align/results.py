"""Result objects produced by alignment runs.

Two shapes share one surface:

* :class:`AlignmentResult` — the partition-based methods (trivial,
  deblank, hybrid, overlap): a partition of the combined graph plus the
  induced :class:`~repro.partition.alignment.PartitionAlignment`;
* :class:`BaselineResult` — methods that produce an explicit pair set
  (similarity flooding, label invention) wrapped in a
  :class:`PairAlignment`.

Both expose ``method``, ``graph``, ``engine``, ``alignment``,
``matched_entities()``, ``unaligned_counts()`` and ``report()``, which is
all the CLI, the session API and the report builder need — a method
runner may return either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..model.graph import NodeId
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from ..partition.weighted import WeightedPartition
from ..similarity.overlap_alignment import OverlapTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import AlignConfig
    from .report import AlignmentReport


class _ResultOps:
    """Shared convenience surface of the two result shapes."""

    def matched_entities(self) -> int:
        """Deduplicated count of aligned entities (matched classes)."""
        return self.alignment.matched_class_count()  # type: ignore[attr-defined]

    def unaligned_counts(self) -> tuple[int, int]:
        """``(|Unaligned_1|, |Unaligned_2|)``."""
        return (
            len(self.alignment.unaligned_source()),  # type: ignore[attr-defined]
            len(self.alignment.unaligned_target()),  # type: ignore[attr-defined]
        )

    def report(self, config: "AlignConfig | None" = None) -> "AlignmentReport":
        """The serializable :class:`~repro.align.report.AlignmentReport`."""
        from .report import AlignmentReport  # late import (report imports nothing back)

        return AlignmentReport.from_result(self, config)


@dataclass(frozen=True)
class AlignmentResult(_ResultOps):
    """Everything produced by one partition-based alignment run.

    ``weighted`` is populated by the overlap method only; ``alignment``
    always reflects the final partition.  ``details`` carries
    method-specific diagnostics (e.g. the signature round counts of the
    k-bisimulation family) and is surfaced in the report's
    ``diagnostics`` block, mirroring :class:`BaselineResult`.
    """

    method: str
    graph: CombinedGraph
    partition: Partition
    alignment: PartitionAlignment
    interner: ColorInterner
    weighted: WeightedPartition | None = None
    trace: OverlapTrace | None = None
    engine: str = "reference"
    details: dict = field(default_factory=dict)


class PairAlignment:
    """An alignment backed by an explicit pair set (baseline methods).

    Mirrors the query surface of
    :class:`~repro.partition.alignment.PartitionAlignment` so callers can
    treat baseline and partition results uniformly.
    ``matched_class_count`` counts connected components of the bipartite
    pair graph — for crossover-closed pair sets (every alignment induced
    by a partition or by label equality) this coincides with the number
    of matched classes.
    """

    __slots__ = ("_graph", "_pairs", "_matched_source", "_matched_target")

    def __init__(
        self, graph: CombinedGraph, pairs: Iterable[tuple[NodeId, NodeId]]
    ) -> None:
        self._graph = graph
        self._pairs = frozenset(pairs)
        self._matched_source = frozenset(s for s, _ in self._pairs)
        self._matched_target = frozenset(t for _, t in self._pairs)

    @property
    def graph(self) -> CombinedGraph:
        return self._graph

    def pairs(self) -> Iterator[tuple[NodeId, NodeId]]:
        return iter(self._pairs)

    def pair_count(self) -> int:
        return len(self._pairs)

    def aligned(self, source_node: NodeId, target_node: NodeId) -> bool:
        return (source_node, target_node) in self._pairs

    def unaligned_source(self) -> frozenset[NodeId]:
        return self._graph.source_nodes - self._matched_source

    def unaligned_target(self) -> frozenset[NodeId]:
        return self._graph.target_nodes - self._matched_target

    def unaligned(self) -> frozenset[NodeId]:
        return self.unaligned_source() | self.unaligned_target()

    def matched_class_count(self) -> int:
        """Connected components of the bipartite pair graph."""
        parent: dict[NodeId, NodeId] = {}

        def find(node: NodeId) -> NodeId:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        for source, target in self._pairs:
            for node in (("s", source), ("t", target)):
                parent.setdefault(node, node)
            root_s, root_t = find(("s", source)), find(("t", target))
            if root_s != root_t:
                parent[root_t] = root_s
        return len({find(node) for node in parent})

    def __repr__(self) -> str:
        return (
            f"<PairAlignment pairs={len(self._pairs)} "
            f"matched={self.matched_class_count()}>"
        )


@dataclass(frozen=True)
class BaselineResult(_ResultOps):
    """The outcome of a pair-set method (registry ``baseline`` specs).

    ``details`` carries method-specific diagnostics (e.g. the number of
    similarity-flooding rounds) and is surfaced in the report's
    ``diagnostics`` block.
    """

    method: str
    graph: CombinedGraph
    alignment: PairAlignment
    engine: str = "reference"
    details: dict = field(default_factory=dict)
