"""Serializable alignment reports: a stable, versioned result schema.

An :class:`AlignmentReport` is the portable rendering of one alignment
run — the aligned pairs, the unaligned node sets, summary statistics and
optional diagnostics — detached from the in-memory graphs so CLI runs and
batch experiments can persist results (``rdf-align align --report r.json``),
reload them (:meth:`AlignmentReport.from_json`) and diff two runs
(:meth:`AlignmentReport.diff`).

Schema stability contract: the payload carries ``schema`` and ``version``
markers; :meth:`AlignmentReport.validate` checks a payload against the
current schema and :meth:`AlignmentReport.from_dict` refuses payloads
that do not conform (:class:`~repro.exceptions.ReportError`).  Nodes are
rendered as the ``repr`` of their identifier in their own version (for
:class:`~repro.model.rdf.RDFGraph` inputs that is the term itself, e.g.
``URI('uoe')`` or ``_:b4``), and every sequence is sorted — two runs that
align the same nodes produce byte-identical JSON.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import ReportError, UnknownMethodError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.graph import NodeId
    from .config import AlignConfig
    from .results import AlignmentResult, BaselineResult

#: Schema identity of the JSON payload.
SCHEMA = "repro/alignment-report"
SCHEMA_VERSION = 1

#: Required top-level keys and their types (the validation contract).
_REQUIRED: dict[str, type] = {
    "schema": str,
    "version": int,
    "method": str,
    "engine": str,
    "parameters": dict,
    "stats": dict,
    "pairs": list,
    "unaligned_source": list,
    "unaligned_target": list,
}

_STAT_KEYS = (
    "matched_entities",
    "pair_count",
    "unaligned_source",
    "unaligned_target",
    "nodes",
    "edges",
)


@dataclass(frozen=True)
class AlignmentReport:
    """One alignment run as stable, serializable data."""

    method: str
    engine: str
    parameters: dict
    stats: dict
    pairs: tuple[tuple[str, str], ...]
    unaligned_source: tuple[str, ...]
    unaligned_target: tuple[str, ...]
    diagnostics: dict | None = None
    version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: "AlignmentResult | BaselineResult",
        config: "AlignConfig | None" = None,
    ) -> "AlignmentReport":
        """Build a report from any method result (partition or baseline).

        *config*, when given, records the run parameters (theta, probe,
        splitter name) in the report; the session API always passes it.
        """
        graph = result.graph
        alignment = result.alignment

        def render(node: "NodeId") -> str:
            return repr(graph.original(node))

        pairs = tuple(
            sorted((render(s), render(t)) for s, t in alignment.pairs())
        )
        unaligned_source = tuple(
            sorted(render(n) for n in alignment.unaligned_source())
        )
        unaligned_target = tuple(
            sorted(render(n) for n in alignment.unaligned_target())
        )
        stats = {
            "matched_entities": alignment.matched_class_count(),
            "pair_count": len(pairs),
            "unaligned_source": len(unaligned_source),
            "unaligned_target": len(unaligned_target),
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        }
        parameters: dict = {}
        if config is not None:
            parameters = {
                "theta": config.theta,
                "probe": config.probe,
                "splitter": config.splitter_name,
            }
            try:
                from .registry import get_method

                if get_method(result.method).uses_k:
                    parameters["k"] = config.k
            except UnknownMethodError:  # unregistered ad-hoc result
                pass
        diagnostics: dict | None = None
        trace = getattr(result, "trace", None)
        if trace is not None:
            diagnostics = {
                "literal_matches": trace.literal_matches,
                "rounds": list(trace.rounds),
                "stopped_by_round_limit": trace.stopped_by_round_limit,
                "weight_truncations": trace.weight_truncations,
            }
        details = getattr(result, "details", None)
        if details:
            diagnostics = dict(diagnostics or {})
            diagnostics.update(details)
        return cls(
            method=result.method,
            engine=result.engine,
            parameters=parameters,
            stats=stats,
            pairs=pairs,
            unaligned_source=unaligned_source,
            unaligned_target=unaligned_target,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON payload (plain lists/dicts, schema markers included)."""
        payload = {
            "schema": SCHEMA,
            "version": self.version,
            "method": self.method,
            "engine": self.engine,
            "parameters": dict(self.parameters),
            "stats": dict(self.stats),
            "pairs": [list(pair) for pair in self.pairs],
            "unaligned_source": list(self.unaligned_source),
            "unaligned_target": list(self.unaligned_target),
        }
        if self.diagnostics is not None:
            payload["diagnostics"] = dict(self.diagnostics)
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON: sorted keys, stable sequence order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def validate(payload: object) -> list[str]:
        """Check *payload* against the schema; return readable problems."""
        if not isinstance(payload, dict):
            return [f"payload must be an object, got {type(payload).__name__}"]
        problems = []
        for key, expected in _REQUIRED.items():
            if key not in payload:
                problems.append(f"missing key {key!r}")
            elif not isinstance(payload[key], expected):
                problems.append(
                    f"key {key!r} must be {expected.__name__}, "
                    f"got {type(payload[key]).__name__}"
                )
        if problems:
            return problems
        if payload["schema"] != SCHEMA:
            problems.append(
                f"schema is {payload['schema']!r}, expected {SCHEMA!r}"
            )
        if payload["version"] > SCHEMA_VERSION:
            problems.append(
                f"version {payload['version']} is newer than the supported "
                f"{SCHEMA_VERSION}"
            )
        for index, pair in enumerate(payload["pairs"]):
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(term, str) for term in pair)
            ):
                problems.append(f"pairs[{index}] is not a [source, target] pair")
                break
        for key in ("unaligned_source", "unaligned_target"):
            if not all(isinstance(term, str) for term in payload[key]):
                problems.append(f"{key} must contain only strings")
        missing_stats = [k for k in _STAT_KEYS if k not in payload["stats"]]
        if missing_stats:
            problems.append(f"stats is missing {missing_stats}")
        return problems

    @classmethod
    def from_dict(cls, payload: dict) -> "AlignmentReport":
        """Rebuild a report, refusing payloads that fail :meth:`validate`."""
        problems = cls.validate(payload)
        if problems:
            raise ReportError(
                "not a valid alignment report: " + "; ".join(problems)
            )
        return cls(
            method=payload["method"],
            engine=payload["engine"],
            parameters=dict(payload["parameters"]),
            stats=dict(payload["stats"]),
            pairs=tuple((pair[0], pair[1]) for pair in payload["pairs"]),
            unaligned_source=tuple(payload["unaligned_source"]),
            unaligned_target=tuple(payload["unaligned_target"]),
            diagnostics=(
                dict(payload["diagnostics"])
                if payload.get("diagnostics") is not None
                else None
            ),
            version=payload["version"],
        )

    @classmethod
    def from_json(cls, text: str) -> "AlignmentReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReportError(f"not JSON: {error}") from None
        return cls.from_dict(payload)

    def save(self, path: str | os.PathLike) -> None:
        from ..io.atomic import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "AlignmentReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The CLI's one-line rendering of the run."""
        return (
            f"method={self.method} "
            f"matched_entities={self.stats['matched_entities']} "
            f"unaligned_source={self.stats['unaligned_source']} "
            f"unaligned_target={self.stats['unaligned_target']}"
        )

    def diff(self, other: "AlignmentReport") -> dict:
        """What changed between two runs (pairs gained/lost, stat deltas)."""
        mine, theirs = set(self.pairs), set(other.pairs)
        return {
            "added_pairs": sorted(theirs - mine),
            "removed_pairs": sorted(mine - theirs),
            "stats": {
                key: other.stats.get(key, 0) - self.stats.get(key, 0)
                for key in sorted(set(self.stats) | set(other.stats))
            },
        }
