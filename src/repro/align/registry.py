"""The pluggable method registry: one :class:`MethodSpec` per alignment family.

The paper presents alignment as a family of related operators forming the
hierarchy ``trivial ⊆ deblank ⊆ hybrid ⊆ overlap`` (Sections 3.4 and 4.7).
This module makes that family *data*: every method — the four partition
builders, the related-work baselines, and any third-party operator — is a
:class:`MethodSpec` registered under a name, and everything that used to
hardcode the method list (``METHOD_ORDER``, the CLI's ``--method`` choices,
the figure experiments) derives it from here instead.

Registering a new method is one call::

    from repro.align import MethodSpec, register_method

    def my_runner(graph, config, context):
        ...  # -> AlignmentResult or BaselineResult
        return result

    register_method(MethodSpec("my_method", my_runner, finer_than="hybrid"))

after which ``AlignConfig(method="my_method")``, ``Aligner`` and
``rdf-align align --method my_method`` all work (the CLI reads the
registry when it builds its parser).

The runner contract: ``runner(graph, config, context)`` where *graph* is
the pair's :class:`~repro.model.union.CombinedGraph`, *config* the active
:class:`~repro.align.config.AlignConfig` and *context* a
:class:`~repro.align.methods.MethodContext` carrying session-cached
artifacts (CSR snapshot, memoized literal splitter).  It returns an object
with the result surface described in :mod:`repro.align.results` (at
minimum ``method``, ``graph``, ``engine`` and an ``alignment`` with
``pairs()``/``unaligned_source()``/``unaligned_target()``/
``matched_class_count()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..exceptions import ConfigError, UnknownMethodError


@dataclass(frozen=True)
class MethodSpec:
    """One alignment method, as the registry sees it.

    ``finer_than`` names the method this one refines (``None`` for the
    coarsest): the paper's containment hierarchy, used to derive the
    coarse-to-fine ``METHOD_ORDER``.  ``baseline`` marks related-work
    methods that sit outside the hierarchy (they are offered by the CLI
    but never enter the order).  ``uses_csr`` tells the session whether
    the dense engine should hand the runner a CSR snapshot (the trivial
    method and the baselines never touch one).  ``label_floor`` says the
    method's partition can never split label-equal URI nodes — true for
    the paper's four operators, false for the all-node bisimulation
    family, whose refinement distinguishes URIs by structure; the
    differential oracle keys its ground-truth floor check on this flag.
    ``uses_k`` marks methods parameterized by the round bound
    ``AlignConfig.k`` (reports then record ``k`` among their parameters).
    """

    name: str
    runner: Callable[..., object]
    finer_than: str | None = None
    description: str = ""
    baseline: bool = False
    uses_csr: bool = True
    label_floor: bool = True
    uses_k: bool = False


#: name -> spec, in registration order (dicts preserve insertion order).
_REGISTRY: dict[str, MethodSpec] = {}

_defaults_loaded = False


def _ensure_defaults() -> None:
    """Load the built-in methods on first registry access (import cycle
    breaker: :mod:`repro.align.methods` imports the partition builders,
    which must not happen while this module is being imported)."""
    global _defaults_loaded
    if not _defaults_loaded:
        _defaults_loaded = True
        from . import methods  # noqa: F401  (registers the built-ins)


def register_method(spec: MethodSpec, replace: bool = False) -> MethodSpec:
    """Add *spec* to the registry and return it.

    Raises :class:`ConfigError` on a malformed or duplicate name, or when
    ``finer_than`` names a method that is not registered yet.
    """
    _ensure_defaults()
    name = spec.name
    if not isinstance(name, str) or not name or not name.replace("_", "").isalnum():
        raise ConfigError(
            f"method name must be a non-empty alphanumeric/underscore "
            f"string, got {name!r}"
        )
    if not callable(spec.runner):
        raise ConfigError(f"runner of method {name!r} is not callable")
    if name in _REGISTRY and not replace:
        raise ConfigError(
            f"method {name!r} is already registered (pass replace=True to override)"
        )
    if spec.finer_than is not None and spec.finer_than not in _REGISTRY:
        raise ConfigError(
            f"method {name!r} claims to refine unknown method {spec.finer_than!r}"
        )
    _REGISTRY[name] = spec
    return spec


def unregister_method(name: str) -> None:
    """Remove a method (third-party/test cleanup; built-ins can be
    re-registered by reloading :mod:`repro.align.methods`)."""
    _ensure_defaults()
    _REGISTRY.pop(name, None)


def get_method(name: str) -> MethodSpec:
    """The spec registered under *name*, or :class:`UnknownMethodError`."""
    _ensure_defaults()
    try:
        return _REGISTRY[name]
    except (KeyError, TypeError):
        raise UnknownMethodError(
            f"unknown method {name!r}; expected one of {method_names()}"
        ) from None


def iter_methods() -> Iterator[MethodSpec]:
    """All registered specs: hierarchy methods first (coarse to fine),
    then baselines and third-party methods in registration order."""
    _ensure_defaults()
    ordered = method_order()
    for name in ordered:
        yield _REGISTRY[name]
    for name, spec in _REGISTRY.items():
        if name not in ordered:
            yield spec


def method_order() -> tuple[str, ...]:
    """Non-baseline methods ordered coarsest to finest.

    Derived from the ``finer_than`` edges by a stable topological sort
    (registration order breaks ties), so the built-ins yield the paper's
    ``("trivial", "deblank", "hybrid", "overlap")``.
    """
    _ensure_defaults()
    members = [s for s in _REGISTRY.values() if not s.baseline]
    placed: list[str] = []
    remaining = {s.name: s for s in members}
    while remaining:
        progressed = False
        for name in list(remaining):
            finer_than = remaining[name].finer_than
            if finer_than is None or finer_than in placed or finer_than not in remaining:
                placed.append(name)
                del remaining[name]
                progressed = True
        if not progressed:  # pragma: no cover - register_method forbids cycles
            placed.extend(sorted(remaining))
            break
    return tuple(placed)


def method_names() -> tuple[str, ...]:
    """Every registered method name, in :func:`iter_methods` order.

    This is the CLI's ``--method`` choice list.
    """
    return tuple(spec.name for spec in iter_methods())


def refines(finer: str, coarser: str) -> bool:
    """Does *finer* (transitively) refine *coarser* per ``finer_than``?"""
    spec = get_method(finer)
    while spec.finer_than is not None:
        if spec.finer_than == coarser:
            return True
        spec = get_method(spec.finer_than)
    return False
