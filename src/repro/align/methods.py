"""Built-in method runners and their registry entries.

This module is imported lazily by the registry's ``_ensure_defaults`` so
that importing :mod:`repro.align.registry` (or validating an
:class:`~repro.align.config.AlignConfig`) never drags the partition
builders in before they are needed.

Each runner follows the registry contract
``runner(graph, config, context) -> result`` (see
:mod:`repro.align.registry`); the partition families return
:class:`~repro.align.results.AlignmentResult`, the baselines
:class:`~repro.align.results.BaselineResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Collection

from ..baselines.label_invention import label_invention_alignment
from ..baselines.similarity_flooding import similarity_flooding
from ..core.deblank import deblank_partition
from ..core.dense import resolve_refine_engine
from ..core.hybrid import hybrid_partition
from ..core.ksignature import SignatureStats, ksignature_partition
from ..core.trivial import trivial_partition
from ..model.csr import CSRGraph
from ..model.graph import NodeId
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from ..partition.weighted import WeightedPartition
from ..similarity.overlap_alignment import OverlapTrace, overlap_partition
from .registry import MethodSpec, register_method
from .results import AlignmentResult, BaselineResult, PairAlignment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import AlignConfig


@dataclass
class MethodContext:
    """Session-provided artifacts a runner may reuse.

    ``csr`` is a prebuilt snapshot of the combined graph (dense engine
    only); ``splitter`` a possibly-memoized literal characterizer that
    overrides the config's raw one.  Both are optional: a bare
    ``MethodContext()`` makes every runner self-sufficient.
    """

    csr: CSRGraph | None = None
    splitter: Callable[[str], frozenset] | None = None


def run_method(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext | None = None
) -> AlignmentResult | BaselineResult:
    """Dispatch *config.method* through the registry on a combined graph."""
    from .registry import get_method

    return get_method(config.method).runner(graph, config, context or MethodContext())


# ----------------------------------------------------------------------
# The paper's partition hierarchy (Sections 3.4 and 4.7)
# ----------------------------------------------------------------------
def _partition_result(
    method: str,
    graph: CombinedGraph,
    partition: Partition,
    interner: ColorInterner,
    config: "AlignConfig",
    weighted: WeightedPartition | None = None,
    trace: OverlapTrace | None = None,
    details: dict | None = None,
) -> AlignmentResult:
    return AlignmentResult(
        method=method,
        graph=graph,
        partition=partition,
        alignment=PartitionAlignment(graph, partition),
        interner=interner,
        weighted=weighted,
        trace=trace,
        engine=config.engine,
        details=details or {},
    )


def _trivial_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    interner = ColorInterner()
    partition = trivial_partition(graph, interner, engine=config.engine)
    return _partition_result("trivial", graph, partition, interner, config)


def _deblank_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    interner = ColorInterner()
    partition = deblank_partition(
        graph, interner, engine=config.engine,
        **({"csr": context.csr} if context.csr is not None else {}),
    )
    return _partition_result("deblank", graph, partition, interner, config)


def _hybrid_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    interner = ColorInterner()
    partition = hybrid_partition(
        graph, interner, engine=config.engine, csr=context.csr
    )
    return _partition_result("hybrid", graph, partition, interner, config)


def _overlap_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    interner = ColorInterner()
    trace = OverlapTrace()
    weighted = overlap_partition(
        graph,
        theta=config.theta,
        interner=interner,
        base=hybrid_partition(
            graph, interner, engine=config.engine, csr=context.csr
        ),
        probe=config.probe,  # type: ignore[arg-type]
        splitter=context.splitter or config.splitter,
        trace=trace,
        engine=config.engine,
        csr=context.csr,
    )
    return _partition_result(
        "overlap", graph, weighted.partition, interner, config,
        weighted=weighted, trace=trace,
    )


# ----------------------------------------------------------------------
# The k-bisimulation hash-signature family (Rau et al., and full bisim as
# its k→∞ anchor).  These refine over *all* nodes, so unlike the paper's
# four operators they may split label-equal URIs (label_floor=False).
# ----------------------------------------------------------------------
def _bisim_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    interner = ColorInterner()
    refine = resolve_refine_engine(config.engine)
    partition = refine(
        graph, label_partition(graph, interner), None, interner,
        **({"csr": context.csr} if context.csr is not None else {}),
    )
    return _partition_result("bisim", graph, partition, interner, config)


def _signature_family(
    method: str,
    graph: CombinedGraph,
    config: "AlignConfig",
    context: MethodContext,
    subset: Collection[NodeId] | None,
) -> AlignmentResult:
    """Shared runner body of ``kbisim``/``kbisim_deblank``.

    ``config.jobs != 1`` routes signature hashing through the per-node
    shm shard pool when the platform supports it; the pooled and serial
    paths are byte-identical by construction (same payloads, same hash,
    same interning order), so jobs never affects the result.
    """
    interner = ColorInterner()
    stats = SignatureStats()
    partition: Partition | None = None
    if config.jobs != 1:
        from ..experiments.ksig_shard import (
            pooled_available,
            pooled_ksignature_partition,
        )

        if pooled_available():
            partition = pooled_ksignature_partition(
                graph,
                interner,
                k=config.k,
                engine=config.engine,
                subset=subset,
                csr=context.csr,
                stats=stats,
                jobs=config.jobs,
            )
    if partition is None:
        partition = ksignature_partition(
            graph,
            interner,
            k=config.k,
            engine=config.engine,
            subset=subset,
            csr=context.csr,
            stats=stats,
        )
    details = {
        "k": stats.k,
        "signature_rounds": stats.rounds,
        "signature_converged": stats.converged,
        "signature_classes": list(stats.class_counts),
    }
    return _partition_result(
        method, graph, partition, interner, config, details=details
    )


def _kbisim_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    return _signature_family("kbisim", graph, config, context, None)


def _kbisim_deblank_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> AlignmentResult:
    return _signature_family(
        "kbisim_deblank", graph, config, context, graph.blanks()
    )


# ----------------------------------------------------------------------
# Related-work baselines (PAPERS.md: Melnik et al. [12], Tzitzikas et al. [17])
# ----------------------------------------------------------------------
def _similarity_flooding_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> BaselineResult:
    flooding = similarity_flooding(graph)
    pairs = flooding.mutual_best_matches()
    return BaselineResult(
        method="similarity_flooding",
        graph=graph,
        alignment=PairAlignment(graph, pairs),
        engine=config.engine,
        details={"rounds": flooding.rounds},
    )


def _label_invention_runner(
    graph: CombinedGraph, config: "AlignConfig", context: MethodContext
) -> BaselineResult:
    pairs = label_invention_alignment(graph)
    return BaselineResult(
        method="label_invention",
        graph=graph,
        alignment=PairAlignment(graph, pairs),
        engine=config.engine,
    )


register_method(MethodSpec(
    name="trivial",
    runner=_trivial_runner,
    finer_than=None,
    description="label equality only (Section 3.4)",
    uses_csr=False,
))
register_method(MethodSpec(
    name="deblank",
    runner=_deblank_runner,
    finer_than="trivial",
    description="plus bisimulation on blank nodes (Section 3.4)",
))
register_method(MethodSpec(
    name="hybrid",
    runner=_hybrid_runner,
    finer_than="deblank",
    description="plus bisimulation on renamed URIs (Section 3.4)",
))
register_method(MethodSpec(
    name="overlap",
    runner=_overlap_runner,
    finer_than="hybrid",
    description="plus similarity matches robust under edits (Section 4.7)",
))
register_method(MethodSpec(
    name="bisim",
    runner=_bisim_runner,
    finer_than=None,
    description="full maximal bisimulation over all nodes (Section 3.2)",
    label_floor=False,
))
register_method(MethodSpec(
    name="kbisim",
    runner=_kbisim_runner,
    finer_than="bisim",
    description="hash-signature k-bisimulation, k rounds (Rau et al., 2022)",
    label_floor=False,
    uses_k=True,
))
register_method(MethodSpec(
    name="kbisim_deblank",
    runner=_kbisim_deblank_runner,
    finer_than="deblank",
    description="k-round signature refinement on blank nodes only",
    uses_k=True,
))
register_method(MethodSpec(
    name="similarity_flooding",
    runner=_similarity_flooding_runner,
    description="mutual-best-match similarity flooding (Melnik et al., ICDE 2002)",
    baseline=True,
    uses_csr=False,
))
register_method(MethodSpec(
    name="label_invention",
    runner=_label_invention_runner,
    description="blank-node label invention (Tzitzikas et al., ISWC 2012)",
    baseline=True,
    uses_csr=False,
))
