"""The :class:`Aligner` session: one config, cached per-source state.

An :class:`Aligner` holds an immutable :class:`~repro.align.config.
AlignConfig` plus per-graph caches that make *repeated* alignments cheap,
the way :class:`repro.experiments.store.VersionStore` does internally for
the figure grids:

* a per-version CSR block cache — with ``engine="dense"`` each graph is
  snapshotted once and every pair's union snapshot is assembled by
  :meth:`~repro.model.csr.CSRGraph.from_blocks`;
* a per-splitter literal characterization cache — version chains share
  most literal values, so across a session every distinct string is
  split exactly once (subsuming the old ``align_many`` special case);
* a per-path parse cache — :meth:`Aligner.align` accepts file paths
  (N-Triples or Turtle, via :func:`repro.io.load_graph`) and loads each
  path once.

Usage::

    from repro.align import AlignConfig, Aligner

    aligner = Aligner(AlignConfig(method="overlap", engine="dense"))
    result = aligner.align("v1.nt", "v2.nt")     # paths or TripleGraphs
    batch = aligner.align_many(v1, [v2, v3, v4])
    report = aligner.report(v1, v2)              # serializable AlignmentReport

The caches never change results — every alignment is a pure function of
the two graphs and the config — they only change how often shared work
is redone.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from ..model.csr import CSRGraph
from ..model.graph import TripleGraph
from ..model.union import CombinedGraph
from .config import AlignConfig
from .methods import MethodContext, run_method
from .registry import get_method
from .report import AlignmentReport

#: Anything :class:`Aligner` accepts as one side of an alignment.
GraphLike = "TripleGraph | str | os.PathLike"


class Aligner:
    """A reusable alignment session around one :class:`AlignConfig`.

    Construct with a config, keyword overrides, or both
    (``Aligner(config, theta=0.5)`` applies the override on top)::

        aligner = Aligner(method="hybrid", engine="dense")

    Derived sessions share caches: :meth:`evolve` returns a new
    :class:`Aligner` with a changed config whose block/literal caches are
    the same objects, so ``aligner.evolve(theta=0.8)`` reuses every
    snapshot already built.
    """

    #: Graph snapshots / parsed files kept per session.  LRU-bounded like
    #: :class:`~repro.experiments.store.VersionStore`'s caches: a session
    #: aligning an open-ended stream of distinct graphs must not pin
    #: every input it has ever seen.
    BLOCK_CACHE_SIZE = 16
    PATH_CACHE_SIZE = 16

    #: Distinct literal values characterized per splitter before the
    #: oldest entries are dropped (FIFO; the cache is pure memoization,
    #: eviction only costs re-splitting).
    SPLIT_CACHE_SIZE = 1 << 16

    def __init__(self, config: AlignConfig | None = None, **overrides) -> None:
        if config is None:
            config = AlignConfig()
        if overrides:
            config = config.evolve(**overrides)
        self.config = config
        #: id(graph) -> (graph, CSR block); the graph reference pins the
        #: id while the entry lives (eviction drops both together).
        self._blocks: OrderedDict[int, tuple[TripleGraph, CSRGraph]] = OrderedDict()
        #: splitter callable -> {literal value -> characterization}.
        self._split_caches: dict[Callable, dict[str, frozenset]] = {}
        #: resolved path -> parsed graph.
        self._loaded: OrderedDict[str, TripleGraph] = OrderedDict()

    # ------------------------------------------------------------------
    # Config composition
    # ------------------------------------------------------------------
    def evolve(self, **changes) -> "Aligner":
        """A sibling session with *changes* applied to the config.

        The new session shares this one's caches (they are config-
        independent), so sweeping a parameter over one version chain
        builds each snapshot once.
        """
        sibling = Aligner(self.config.evolve(**changes))
        sibling._blocks = self._blocks
        sibling._split_caches = self._split_caches
        sibling._loaded = self._loaded
        return sibling

    # ------------------------------------------------------------------
    # Alignment entry points
    # ------------------------------------------------------------------
    def align(self, source: GraphLike, target: GraphLike):
        """Align two versions (graphs or file paths).

        Returns an :class:`~repro.align.results.AlignmentResult` for the
        partition methods, a :class:`~repro.align.results.BaselineResult`
        for pair-set methods — both carry ``.alignment`` and
        ``.report()``.
        """
        return self._run(self._resolve(source), self._resolve(target))

    def align_many(self, source: GraphLike, targets: Iterable[GraphLike]) -> list:
        """Align one source version against many targets.

        Same results as one :meth:`align` per pair; the source side's
        artifacts are built once and shared (see the module docstring).
        """
        resolved = self._resolve(source)
        return [self._run(resolved, self._resolve(target)) for target in targets]

    def align_pairs(self, pairs: Iterable[Sequence[GraphLike]]) -> list:
        """Align arbitrary ``(source, target)`` pairs in one session.

        Every graph that recurs across the pair list — a shared ancestor
        version, a chain walked twice — reuses its cached snapshot.
        """
        return [
            self._run(self._resolve(source), self._resolve(target))
            for source, target in pairs
        ]

    def report(self, source: GraphLike, target: GraphLike) -> AlignmentReport:
        """Align and render the serializable report in one step."""
        return self.align(source, target).report(self.config)

    # ------------------------------------------------------------------
    # Cached state
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every cached snapshot, characterization and parsed file."""
        self._blocks.clear()
        self._split_caches.clear()
        self._loaded.clear()

    def _resolve(self, graph: GraphLike) -> TripleGraph:
        if isinstance(graph, TripleGraph):
            return graph
        if isinstance(graph, (str, os.PathLike)):
            from ..io import load_graph  # late: io imports nothing back

            key = os.fspath(graph)
            cached = self._loaded.get(key)
            if cached is None:
                cached = self._loaded[key] = load_graph(graph)
                while len(self._loaded) > self.PATH_CACHE_SIZE:
                    self._loaded.popitem(last=False)
            else:
                self._loaded.move_to_end(key)
            return cached
        raise TypeError(
            f"expected a TripleGraph or a path, got {type(graph).__name__}"
        )

    def _block(self, graph: TripleGraph) -> CSRGraph:
        # While an entry lives, its graph reference pins id(graph); an
        # evicted entry releases the graph and the id may be reused — by
        # then the stale entry is gone, so the key stays unambiguous.
        entry = self._blocks.get(id(graph))
        if entry is None:
            entry = self._blocks[id(graph)] = (graph, CSRGraph(graph))
            while len(self._blocks) > self.BLOCK_CACHE_SIZE:
                self._blocks.popitem(last=False)
        else:
            self._blocks.move_to_end(id(graph))
        return entry[1]

    def _memoized_splitter(self) -> Callable[[str], frozenset]:
        splitter = self.config.splitter
        cache = self._split_caches.setdefault(splitter, {})
        cap = self.SPLIT_CACHE_SIZE

        def cached(value: str) -> frozenset:
            objects = cache.get(value)
            if objects is None:
                objects = cache[value] = splitter(value)
                if len(cache) > cap:
                    del cache[next(iter(cache))]
            return objects

        return cached

    def _run(self, source: TripleGraph, target: TripleGraph):
        spec = get_method(self.config.method)
        graph = CombinedGraph(source, target)
        csr = None
        if self.config.engine == "dense" and spec.uses_csr:
            csr = CSRGraph.from_blocks(self._block(source), self._block(target))
        context = MethodContext(csr=csr, splitter=self._memoized_splitter())
        return spec.runner(graph, self.config, context)

    def __repr__(self) -> str:
        return f"Aligner({self.config!r})"
