"""The :class:`Aligner` session: one config, cached per-source state.

An :class:`Aligner` holds an immutable :class:`~repro.align.config.
AlignConfig` plus per-graph caches that make *repeated* alignments cheap,
the way :class:`repro.experiments.store.VersionStore` does internally for
the figure grids:

* a per-version CSR block cache — with ``engine="dense"`` each graph is
  snapshotted once and every pair's union snapshot is assembled by
  :meth:`~repro.model.csr.CSRGraph.from_blocks`;
* a per-splitter literal characterization cache — version chains share
  most literal values, so across a session every distinct string is
  split exactly once (subsuming the old ``align_many`` special case);
* a per-path parse cache — :meth:`Aligner.align` accepts file paths
  (N-Triples or Turtle, via :func:`repro.io.load_graph`) and loads each
  path once.

Usage::

    from repro.align import AlignConfig, Aligner

    aligner = Aligner(AlignConfig(method="overlap", engine="dense"))
    result = aligner.align("v1.nt", "v2.nt")     # paths or TripleGraphs
    batch = aligner.align_many(v1, [v2, v3, v4])
    report = aligner.report(v1, v2)              # serializable AlignmentReport

The caches never change results — every alignment is a pure function of
the two graphs and the config — they only change how often shared work
is redone.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..model.csr import CSRGraph
from ..model.graph import TripleGraph
from ..model.union import CombinedGraph
from .config import AlignConfig
from .methods import MethodContext, run_method
from .registry import get_method
from .report import AlignmentReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.store import BlankSummary
    from .results import AlignmentResult, BaselineResult

#: Anything :class:`Aligner` accepts as one side of an alignment.
GraphLike = "TripleGraph | str | os.PathLike"


class Aligner:
    """A reusable alignment session around one :class:`AlignConfig`.

    Construct with a config, keyword overrides, or both
    (``Aligner(config, theta=0.5)`` applies the override on top)::

        aligner = Aligner(method="hybrid", engine="dense")

    Derived sessions share caches: :meth:`evolve` returns a new
    :class:`Aligner` with a changed config whose block/literal caches are
    the same objects, so ``aligner.evolve(theta=0.8)`` reuses every
    snapshot already built.
    """

    #: Graph snapshots / parsed files kept per session.  LRU-bounded like
    #: :class:`~repro.experiments.store.VersionStore`'s caches: a session
    #: aligning an open-ended stream of distinct graphs must not pin
    #: every input it has ever seen.
    BLOCK_CACHE_SIZE = 16
    PATH_CACHE_SIZE = 16

    #: Distinct literal values characterized per splitter before the
    #: oldest entries are dropped (FIFO; the cache is pure memoization,
    #: eviction only costs re-splitting).
    SPLIT_CACHE_SIZE = 1 << 16

    def __init__(self, config: AlignConfig | None = None, **overrides: object) -> None:
        if config is None:
            config = AlignConfig()
        if overrides:
            config = config.evolve(**overrides)
        self.config = config
        #: id(graph) -> (graph, CSR block); the graph reference pins the
        #: id while the entry lives (eviction drops both together).
        self._blocks: OrderedDict[int, tuple[TripleGraph, CSRGraph]] = OrderedDict()
        #: splitter callable -> {literal value -> characterization}.
        self._split_caches: dict[Callable, dict[str, frozenset]] = {}
        #: resolved path -> parsed graph.
        self._loaded: OrderedDict[str, TripleGraph] = OrderedDict()

    # ------------------------------------------------------------------
    # Config composition
    # ------------------------------------------------------------------
    def evolve(self, **changes: object) -> "Aligner":
        """A sibling session with *changes* applied to the config.

        The new session shares this one's caches (they are config-
        independent), so sweeping a parameter over one version chain
        builds each snapshot once.
        """
        sibling = Aligner(self.config.evolve(**changes))
        sibling._blocks = self._blocks
        sibling._split_caches = self._split_caches
        sibling._loaded = self._loaded
        return sibling

    # ------------------------------------------------------------------
    # Alignment entry points
    # ------------------------------------------------------------------
    def align(
        self, source: GraphLike, target: GraphLike
    ) -> "AlignmentResult | BaselineResult":
        """Align two versions (graphs or file paths).

        Returns an :class:`~repro.align.results.AlignmentResult` for the
        partition methods, a :class:`~repro.align.results.BaselineResult`
        for pair-set methods — both carry ``.alignment`` and
        ``.report()``.
        """
        return self._run(self._resolve(source), self._resolve(target))

    def align_many(self, source: GraphLike, targets: Iterable[GraphLike]) -> list:
        """Align one source version against many targets.

        Same results as one :meth:`align` per pair; the source side's
        artifacts are built once and shared (see the module docstring).
        """
        resolved = self._resolve(source)
        return [self._run(resolved, self._resolve(target)) for target in targets]

    def align_pairs(self, pairs: Iterable[Sequence[GraphLike]]) -> list:
        """Align arbitrary ``(source, target)`` pairs in one session.

        Every graph that recurs across the pair list — a shared ancestor
        version, a chain walked twice — reuses its cached snapshot.
        """
        return [
            self._run(self._resolve(source), self._resolve(target))
            for source, target in pairs
        ]

    def align_chain(
        self, history: Sequence[GraphLike], changes: Sequence | None = None
    ) -> list:
        """Align every consecutive pair of a version *history*.

        With the default config this is one :meth:`align` per pair.
        With ``incremental=True`` the chain carries each version's
        deblanking fixpoint forward: version ``k+1``'s partition is
        *maintained* from version ``k``'s under the step's
        :class:`~repro.delta.changes.VersionChanges`
        (:mod:`repro.core.maintain`), and each pair's alignment base is
        composed from the two per-version class summaries instead of
        refined from scratch.  Results are identical either way — only
        wall-clock changes.

        *changes* optionally supplies the per-step deltas (one per
        consecutive pair, e.g. from an archive's write log or a
        generator's ``version_changes``); when omitted they are computed
        by :func:`repro.delta.changes.diff`, which matches nodes by
        identifier — identity-preserving deltas make maintenance
        proportional to the real change.
        """
        from ..exceptions import ConfigError

        graphs = [self._resolve(graph) for graph in history]
        if len(graphs) < 2:
            raise ConfigError(
                f"align_chain needs at least two versions, got {len(graphs)}"
            )
        if changes is not None and len(changes) != len(graphs) - 1:
            raise ConfigError(
                f"expected {len(graphs) - 1} deltas for {len(graphs)} "
                f"versions, got {len(changes)}"
            )
        if not self.config.incremental:
            return [self._run(a, b) for a, b in zip(graphs, graphs[1:])]

        from ..core.maintain import deblank_fixpoint, maintain_or_batch
        from ..delta.changes import diff
        from ..experiments.store import (
            joint_quotient_colors,
            summary_from_partition,
        )

        deltas = (
            list(changes)
            if changes is not None
            else [diff(a, b) for a, b in zip(graphs, graphs[1:])]
        )
        # One interner for the whole chain (the verbatim-carry contract:
        # every step's colors are indices into it, so the next step reuses
        # them as-is) plus the cross-step canonical-form cache that keeps
        # the coarsening pass proportional to the delta.
        from ..partition.interner import ColorInterner

        chain_interner = ColorInterner()
        canon_cache: dict = {}
        fixpoints = [deblank_fixpoint(graphs[0], chain_interner)]
        for graph, delta in zip(graphs[1:], deltas):
            fixpoints.append(
                maintain_or_batch(
                    graph,
                    fixpoints[-1],
                    delta,
                    graph.blanks(),
                    chain_interner,
                    canon_cache=canon_cache,
                )
            )
        summaries = [
            summary_from_partition(graph, fixpoint)
            for graph, fixpoint in zip(graphs, fixpoints)
        ]
        return [
            self._run_composed(
                graphs[i],
                graphs[i + 1],
                summaries[i],
                summaries[i + 1],
                joint_quotient_colors(summaries[i], summaries[i + 1]),
            )
            for i in range(len(graphs) - 1)
        ]

    def _run_composed(
        self,
        source: TripleGraph,
        target: TripleGraph,
        source_summary: "BlankSummary",
        target_summary: "BlankSummary",
        joint: tuple[list[int], list[int]],
    ) -> "AlignmentResult | BaselineResult":
        """One pair's alignment on top of a composed deblanking base."""
        from ..core.hybrid import hybrid_partition
        from ..experiments.store import compose_deblank_partition
        from ..partition.interner import ColorInterner
        from ..similarity.overlap_alignment import OverlapTrace, overlap_partition
        from .methods import _partition_result

        config = self.config
        spec = get_method(config.method)
        if spec.baseline or config.method == "trivial" or config.method not in (
            "deblank", "hybrid", "overlap"
        ):
            # No deblanking fixpoint to reuse (trivial/baselines), or a
            # third-party method without a composed path: run batch.
            return self._run(source, target)
        graph = CombinedGraph(source, target)
        csr = None
        if config.engine == "dense" and spec.uses_csr:
            csr = CSRGraph.from_blocks(self._block(source), self._block(target))
        interner = ColorInterner()
        deblank = compose_deblank_partition(
            graph, source_summary, target_summary, joint, interner
        )
        if config.method == "deblank":
            return _partition_result("deblank", graph, deblank, interner, config)
        hybrid = hybrid_partition(
            graph, interner, base=deblank, engine=config.engine, csr=csr
        )
        if config.method == "hybrid":
            return _partition_result("hybrid", graph, hybrid, interner, config)
        trace = OverlapTrace()
        weighted = overlap_partition(
            graph,
            theta=config.theta,
            interner=interner,
            base=hybrid,
            probe=config.probe,  # type: ignore[arg-type]
            splitter=self._memoized_splitter(),
            trace=trace,
            engine=config.engine,
            csr=csr,
        )
        return _partition_result(
            "overlap", graph, weighted.partition, interner, config,
            weighted=weighted, trace=trace,
        )

    def report(self, source: GraphLike, target: GraphLike) -> AlignmentReport:
        """Align and render the serializable report in one step."""
        return self.align(source, target).report(self.config)

    # ------------------------------------------------------------------
    # Cached state
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every cached snapshot, characterization and parsed file."""
        self._blocks.clear()
        self._split_caches.clear()
        self._loaded.clear()

    def _resolve(self, graph: GraphLike) -> TripleGraph:
        if isinstance(graph, TripleGraph):
            return graph
        if isinstance(graph, (str, os.PathLike)):
            from ..io import load_graph  # late: io imports nothing back
            from ..robustness.retry import RetryPolicy, call_with_retry

            key = os.fspath(graph)
            cached = self._loaded.get(key)
            if cached is None:
                # Transient I/O errors (NFS hiccups, injected EIO) are
                # retried under the session's budget; a missing file is
                # not transient and propagates immediately.
                cached = self._loaded[key] = call_with_retry(
                    lambda: load_graph(graph),
                    policy=RetryPolicy.from_config(self.config),
                )
                while len(self._loaded) > self.PATH_CACHE_SIZE:
                    self._loaded.popitem(last=False)
            else:
                self._loaded.move_to_end(key)
            return cached
        raise TypeError(
            f"expected a TripleGraph or a path, got {type(graph).__name__}"
        )

    def _block(self, graph: TripleGraph) -> CSRGraph:
        # While an entry lives, its graph reference pins id(graph); an
        # evicted entry releases the graph and the id may be reused — by
        # then the stale entry is gone, so the key stays unambiguous.
        entry = self._blocks.get(id(graph))
        if entry is None:
            entry = self._blocks[id(graph)] = (graph, CSRGraph(graph))
            while len(self._blocks) > self.BLOCK_CACHE_SIZE:
                self._blocks.popitem(last=False)
        else:
            self._blocks.move_to_end(id(graph))
        return entry[1]

    def _memoized_splitter(self) -> Callable[[str], frozenset]:
        splitter = self.config.splitter
        cache = self._split_caches.setdefault(splitter, {})
        cap = self.SPLIT_CACHE_SIZE

        def cached(value: str) -> frozenset:
            objects = cache.get(value)
            if objects is None:
                objects = cache[value] = splitter(value)
                if len(cache) > cap:
                    del cache[next(iter(cache))]
            return objects

        return cached

    def _run(
        self, source: TripleGraph, target: TripleGraph
    ) -> "AlignmentResult | BaselineResult":
        spec = get_method(self.config.method)
        graph = CombinedGraph(source, target)
        csr = None
        if self.config.engine == "dense" and spec.uses_csr:
            csr = CSRGraph.from_blocks(self._block(source), self._block(target))
        context = MethodContext(csr=csr, splitter=self._memoized_splitter())
        return spec.runner(graph, self.config, context)

    def __repr__(self) -> str:
        return f"Aligner({self.config!r})"
