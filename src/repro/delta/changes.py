"""Deltas between graph versions, derived from an alignment.

The paper's related-work section notes that "constructing an alignment
between two graphs is virtually equivalent to constructing their delta
[20], a description of changes occurring between the two graphs", and that
its own methods "identify low-level changes occurring on the atomic level
of nodes and their labels".  This module makes that equivalence concrete:
given a combined graph and an alignment partition, it derives

* **node changes** — entities inserted, deleted, renamed (aligned nodes
  with different labels) and kept;
* **triple changes** — added/removed triples *modulo the alignment*
  (a triple whose endpoints all align is not a change, even if every
  identifier in it was renamed).

Ambiguously aligned nodes (fat classes) are reported separately rather
than guessed at.

A second, *operational* delta lives here too: :class:`VersionChanges`, an
exact edit script (node renames/insertions/deletions plus edge
insertions/deletions) connecting two concrete graphs.  Where
:class:`Delta` describes changes *modulo an alignment* for human
consumption, a :class:`VersionChanges` is machine-applicable: ``diff(a,
b).apply(a)`` rebuilds ``b`` exactly, deltas compose, and the
incremental-maintenance machinery (:mod:`repro.core.maintain`) consumes
them to update a bisimulation fixpoint in place of recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..model.graph import Edge, NodeId, TripleGraph
from ..model.labels import Label
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition


@dataclass(frozen=True)
class NodeChange:
    """One node-level change."""

    kind: str  # "inserted" | "deleted" | "renamed" | "ambiguous"
    source: NodeId | None
    target: NodeId | None
    source_label: Label | None = None
    target_label: Label | None = None


@dataclass
class Delta:
    """A low-level change description between two versions."""

    inserted_nodes: list[NodeChange] = field(default_factory=list)
    deleted_nodes: list[NodeChange] = field(default_factory=list)
    renamed_nodes: list[NodeChange] = field(default_factory=list)
    ambiguous_nodes: list[NodeChange] = field(default_factory=list)
    kept_node_count: int = 0
    added_triples: list[Edge] = field(default_factory=list)
    removed_triples: list[Edge] = field(default_factory=list)
    kept_triple_count: int = 0

    @property
    def is_empty(self) -> bool:
        return not (
            self.inserted_nodes
            or self.deleted_nodes
            or self.renamed_nodes
            or self.added_triples
            or self.removed_triples
        )

    def summary(self) -> dict[str, int]:
        return {
            "kept_nodes": self.kept_node_count,
            "inserted_nodes": len(self.inserted_nodes),
            "deleted_nodes": len(self.deleted_nodes),
            "renamed_nodes": len(self.renamed_nodes),
            "ambiguous_nodes": len(self.ambiguous_nodes),
            "kept_triples": self.kept_triple_count,
            "added_triples": len(self.added_triples),
            "removed_triples": len(self.removed_triples),
        }


def compute_delta(graph: CombinedGraph, partition: Partition) -> Delta:
    """Derive the delta of ``graph.source → graph.target`` under *partition*."""
    alignment = PartitionAlignment(graph, partition)
    delta = Delta()

    # ---- node-level changes -------------------------------------------
    for node in sorted(graph.source_nodes, key=repr):
        partners = alignment.partners(node)
        if not partners:
            delta.deleted_nodes.append(
                NodeChange(
                    kind="deleted",
                    source=node,
                    target=None,
                    source_label=graph.label(node),
                )
            )
        elif len(partners) == 1:
            (partner,) = partners
            if graph.label(node) != graph.label(partner):
                delta.renamed_nodes.append(
                    NodeChange(
                        kind="renamed",
                        source=node,
                        target=partner,
                        source_label=graph.label(node),
                        target_label=graph.label(partner),
                    )
                )
            else:
                delta.kept_node_count += 1
        else:
            delta.ambiguous_nodes.append(
                NodeChange(
                    kind="ambiguous",
                    source=node,
                    target=None,
                    source_label=graph.label(node),
                )
            )
    for node in sorted(graph.target_nodes, key=repr):
        if not alignment.partners(node):
            delta.inserted_nodes.append(
                NodeChange(
                    kind="inserted",
                    source=None,
                    target=node,
                    target_label=graph.label(node),
                )
            )

    # ---- triple-level changes (modulo the alignment) -------------------
    source_triples: dict[tuple, Edge] = {}
    target_triples: dict[tuple, Edge] = {}
    for subject, predicate, obj in graph.edges():
        key = (partition[subject], partition[predicate], partition[obj])
        if subject in graph.source_nodes:
            source_triples[key] = (subject, predicate, obj)
        else:
            target_triples[key] = (subject, predicate, obj)
    delta.kept_triple_count = len(source_triples.keys() & target_triples.keys())
    delta.removed_triples = [
        source_triples[key]
        for key in sorted(source_triples.keys() - target_triples.keys())
    ]
    delta.added_triples = [
        target_triples[key]
        for key in sorted(target_triples.keys() - source_triples.keys())
    ]
    return delta


def render_delta(graph: CombinedGraph, delta: Delta, limit: int = 20) -> str:
    """A human-readable changelog."""

    def term(node: NodeId) -> str:
        return repr(graph.original(node))

    lines = ["delta summary:"]
    for key, value in delta.summary().items():
        lines.append(f"  {key}: {value}")

    def section(title: str, entries: Iterable[str]) -> None:
        entries = list(entries)
        if not entries:
            return
        lines.append(f"{title}:")
        for entry in entries[:limit]:
            lines.append(f"  {entry}")
        if len(entries) > limit:
            lines.append(f"  ... and {len(entries) - limit} more")

    section(
        "renamed",
        (
            f"{change.source_label} -> {change.target_label}"
            for change in delta.renamed_nodes
        ),
    )
    section(
        "deleted nodes",
        (str(change.source_label) for change in delta.deleted_nodes),
    )
    section(
        "inserted nodes",
        (str(change.target_label) for change in delta.inserted_nodes),
    )
    section(
        "removed triples",
        (
            f"({term(s)} {term(p)} {term(o)})"
            for s, p, o in delta.removed_triples
        ),
    )
    section(
        "added triples",
        (
            f"({term(s)} {term(p)} {term(o)})"
            for s, p, o in delta.added_triples
        ),
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Operational deltas between two concrete graph versions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VersionChanges:
    """An exact edit script turning one graph version into the next.

    The script is applied in this order: drop ``removed_edges`` and
    ``removed_nodes`` (before-identifiers), substitute node identifiers
    through ``renamed`` (``(old_id, new_id, new_label)``; surviving edges
    are mapped endpoint-wise), then add ``added_nodes`` and
    ``added_edges`` (after-identifiers).  A rename with ``old_id ==
    new_id`` is a relabel in place.

    Invariants expected by :meth:`apply` and the maintenance machinery:
    the rename map is injective, removed edges use before-identifiers,
    added edges use after-identifiers, and every endpoint of a surviving
    or added edge survives.  :func:`diff` produces scripts satisfying all
    of them by construction.
    """

    renamed: tuple[tuple[NodeId, NodeId, Label], ...] = ()
    removed_nodes: frozenset = frozenset()
    added_nodes: tuple[tuple[NodeId, Label], ...] = ()
    removed_edges: frozenset = frozenset()
    added_edges: frozenset = frozenset()

    @property
    def is_empty(self) -> bool:
        return not (
            self.renamed
            or self.removed_nodes
            or self.added_nodes
            or self.removed_edges
            or self.added_edges
        )

    def rename_map(self) -> dict[NodeId, NodeId]:
        """``old_id -> new_id`` for every renamed node."""
        return {old: new for old, new, _ in self.renamed}

    def summary(self) -> dict[str, int]:
        return {
            "renamed_nodes": len(self.renamed),
            "removed_nodes": len(self.removed_nodes),
            "added_nodes": len(self.added_nodes),
            "removed_edges": len(self.removed_edges),
            "added_edges": len(self.added_edges),
        }

    # ------------------------------------------------------------------
    def apply(self, graph: TripleGraph) -> TripleGraph:
        """The after-graph: a fresh graph of *graph*'s type, edited."""
        result = type(graph)()
        renames = self.rename_map()
        new_labels = {new: label for _, new, label in self.renamed}
        for node, label in graph.labels().items():
            if node in self.removed_nodes:
                continue
            image = renames.get(node, node)
            result.add_node(image, new_labels.get(image, label))
        for node, label in self.added_nodes:
            result.add_node(node, label)
        for edge in graph.edges():
            if edge in self.removed_edges:
                continue
            subject, predicate, obj = (renames.get(x, x) for x in edge)
            result.add_edge(subject, predicate, obj)
        for subject, predicate, obj in self.added_edges:
            result.add_edge(subject, predicate, obj)
        return result

    # ------------------------------------------------------------------
    def compose(self, other: "VersionChanges") -> "VersionChanges":
        """The single script equivalent to applying *self* then *other*.

        ``a.compose(b).apply(g) == b.apply(a.apply(g))`` for any graph
        the scripts consistently connect (the property test pins this).
        """
        r2 = other.rename_map()
        lbl2 = {new: label for _, new, label in other.renamed}
        inv1 = {new: old for old, new, _ in self.renamed}
        added_mid = {node for node, _ in self.added_nodes}

        removed_nodes = set(self.removed_nodes)
        renamed: list[tuple[NodeId, NodeId, Label]] = []
        for old, new, label in self.renamed:
            if new in other.removed_nodes:
                removed_nodes.add(old)
                continue
            final = r2.get(new, new)
            renamed.append((old, final, lbl2.get(final, label)))
        for old, new, label in other.renamed:
            if old in added_mid or old in inv1:
                continue  # handled through the add / first-rename passes
            renamed.append((old, new, label))
        for node in other.removed_nodes:
            if node not in added_mid and node not in inv1:
                removed_nodes.add(node)

        added: list[tuple[NodeId, Label]] = []
        for node, label in self.added_nodes:
            if node in other.removed_nodes:
                continue  # added then removed: cancels out
            final = r2.get(node, node)
            added.append((final, lbl2.get(final, label)))
        added.extend(other.added_nodes)

        removed_edges = set(self.removed_edges)
        cancelled: set[Edge] = set()
        for edge in other.removed_edges:
            if edge in self.added_edges:
                cancelled.add(edge)  # added then removed: cancels out
            else:
                removed_edges.add(tuple(inv1.get(x, x) for x in edge))
        added_edges = {
            tuple(r2.get(x, x) for x in edge)
            for edge in self.added_edges
            if edge not in cancelled
        }
        added_edges.update(other.added_edges)
        return VersionChanges(
            renamed=tuple(sorted(renamed, key=repr)),
            removed_nodes=frozenset(removed_nodes),
            added_nodes=tuple(sorted(set(added), key=repr)),
            removed_edges=frozenset(removed_edges),
            added_edges=frozenset(added_edges),
        )


def diff(
    before: TripleGraph,
    after: TripleGraph,
    renames: Mapping[NodeId, NodeId] | None = None,
) -> VersionChanges:
    """The :class:`VersionChanges` script connecting *before* to *after*.

    Nodes are matched by identifier; *renames* (``old_id -> new_id``)
    optionally declares identity-preserving identifier moves first — the
    crucial input for blank nodes, whose identifiers reshuffle between
    versions even when the entities persist (pass the generator's or
    archive's entity correspondence here).  Without it, every reshuffled
    blank degenerates into a removal plus an insertion, which is correct
    but defeats incremental maintenance.
    """
    before_labels = before.labels()
    after_labels = after.labels()
    rename_map: dict[NodeId, NodeId] = {}
    if renames:
        for old, new in renames.items():
            if old != new and old in before_labels and new in after_labels:
                rename_map[old] = new

    renamed: list[tuple[NodeId, NodeId, Label]] = []
    removed: set[NodeId] = set()
    image: dict[NodeId, NodeId] = {}
    for node, label in before_labels.items():
        target = rename_map.get(node, node)
        if target in after_labels:
            image[node] = target
            if target != node or after_labels[target] != label:
                renamed.append((node, target, after_labels[target]))
        else:
            removed.add(node)
    mapped = set(image.values())
    added_nodes = tuple(
        sorted(
            ((n, l) for n, l in after_labels.items() if n not in mapped),
            key=repr,
        )
    )

    removed_edges: set[Edge] = set()
    kept_images: set[Edge] = set()
    for edge in before.edges():
        if all(x in image for x in edge):
            mapped_edge = tuple(image[x] for x in edge)
            if after.has_edge(*mapped_edge):
                kept_images.add(mapped_edge)
                continue
        removed_edges.add(edge)
    added_edges = frozenset(
        edge for edge in after.edges() if edge not in kept_images
    )
    return VersionChanges(
        renamed=tuple(sorted(renamed, key=repr)),
        removed_nodes=frozenset(removed),
        added_nodes=added_nodes,
        removed_edges=frozenset(removed_edges),
        added_edges=added_edges,
    )
