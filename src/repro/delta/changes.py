"""Deltas between graph versions, derived from an alignment.

The paper's related-work section notes that "constructing an alignment
between two graphs is virtually equivalent to constructing their delta
[20], a description of changes occurring between the two graphs", and that
its own methods "identify low-level changes occurring on the atomic level
of nodes and their labels".  This module makes that equivalence concrete:
given a combined graph and an alignment partition, it derives

* **node changes** — entities inserted, deleted, renamed (aligned nodes
  with different labels) and kept;
* **triple changes** — added/removed triples *modulo the alignment*
  (a triple whose endpoints all align is not a change, even if every
  identifier in it was renamed).

Ambiguously aligned nodes (fat classes) are reported separately rather
than guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..model.graph import Edge, NodeId
from ..model.labels import Label
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition


@dataclass(frozen=True)
class NodeChange:
    """One node-level change."""

    kind: str  # "inserted" | "deleted" | "renamed" | "ambiguous"
    source: NodeId | None
    target: NodeId | None
    source_label: Label | None = None
    target_label: Label | None = None


@dataclass
class Delta:
    """A low-level change description between two versions."""

    inserted_nodes: list[NodeChange] = field(default_factory=list)
    deleted_nodes: list[NodeChange] = field(default_factory=list)
    renamed_nodes: list[NodeChange] = field(default_factory=list)
    ambiguous_nodes: list[NodeChange] = field(default_factory=list)
    kept_node_count: int = 0
    added_triples: list[Edge] = field(default_factory=list)
    removed_triples: list[Edge] = field(default_factory=list)
    kept_triple_count: int = 0

    @property
    def is_empty(self) -> bool:
        return not (
            self.inserted_nodes
            or self.deleted_nodes
            or self.renamed_nodes
            or self.added_triples
            or self.removed_triples
        )

    def summary(self) -> dict[str, int]:
        return {
            "kept_nodes": self.kept_node_count,
            "inserted_nodes": len(self.inserted_nodes),
            "deleted_nodes": len(self.deleted_nodes),
            "renamed_nodes": len(self.renamed_nodes),
            "ambiguous_nodes": len(self.ambiguous_nodes),
            "kept_triples": self.kept_triple_count,
            "added_triples": len(self.added_triples),
            "removed_triples": len(self.removed_triples),
        }


def compute_delta(graph: CombinedGraph, partition: Partition) -> Delta:
    """Derive the delta of ``graph.source → graph.target`` under *partition*."""
    alignment = PartitionAlignment(graph, partition)
    delta = Delta()

    # ---- node-level changes -------------------------------------------
    for node in sorted(graph.source_nodes, key=repr):
        partners = alignment.partners(node)
        if not partners:
            delta.deleted_nodes.append(
                NodeChange(
                    kind="deleted",
                    source=node,
                    target=None,
                    source_label=graph.label(node),
                )
            )
        elif len(partners) == 1:
            (partner,) = partners
            if graph.label(node) != graph.label(partner):
                delta.renamed_nodes.append(
                    NodeChange(
                        kind="renamed",
                        source=node,
                        target=partner,
                        source_label=graph.label(node),
                        target_label=graph.label(partner),
                    )
                )
            else:
                delta.kept_node_count += 1
        else:
            delta.ambiguous_nodes.append(
                NodeChange(
                    kind="ambiguous",
                    source=node,
                    target=None,
                    source_label=graph.label(node),
                )
            )
    for node in sorted(graph.target_nodes, key=repr):
        if not alignment.partners(node):
            delta.inserted_nodes.append(
                NodeChange(
                    kind="inserted",
                    source=None,
                    target=node,
                    target_label=graph.label(node),
                )
            )

    # ---- triple-level changes (modulo the alignment) -------------------
    source_triples: dict[tuple, Edge] = {}
    target_triples: dict[tuple, Edge] = {}
    for subject, predicate, obj in graph.edges():
        key = (partition[subject], partition[predicate], partition[obj])
        if subject in graph.source_nodes:
            source_triples[key] = (subject, predicate, obj)
        else:
            target_triples[key] = (subject, predicate, obj)
    delta.kept_triple_count = len(source_triples.keys() & target_triples.keys())
    delta.removed_triples = [
        source_triples[key]
        for key in sorted(source_triples.keys() - target_triples.keys())
    ]
    delta.added_triples = [
        target_triples[key]
        for key in sorted(target_triples.keys() - source_triples.keys())
    ]
    return delta


def render_delta(graph: CombinedGraph, delta: Delta, limit: int = 20) -> str:
    """A human-readable changelog."""

    def term(node: NodeId) -> str:
        return repr(graph.original(node))

    lines = ["delta summary:"]
    for key, value in delta.summary().items():
        lines.append(f"  {key}: {value}")

    def section(title: str, entries: Iterable[str]) -> None:
        entries = list(entries)
        if not entries:
            return
        lines.append(f"{title}:")
        for entry in entries[:limit]:
            lines.append(f"  {entry}")
        if len(entries) > limit:
            lines.append(f"  ... and {len(entries) - limit} more")

    section(
        "renamed",
        (
            f"{change.source_label} -> {change.target_label}"
            for change in delta.renamed_nodes
        ),
    )
    section(
        "deleted nodes",
        (str(change.source_label) for change in delta.deleted_nodes),
    )
    section(
        "inserted nodes",
        (str(change.target_label) for change in delta.inserted_nodes),
    )
    section(
        "removed triples",
        (
            f"({term(s)} {term(p)} {term(o)})"
            for s, p, o in delta.removed_triples
        ),
    )
    section(
        "added triples",
        (
            f"({term(s)} {term(p)} {term(o)})"
            for s, p, o in delta.added_triples
        ),
    )
    return "\n".join(lines)
