"""Deltas between graph versions (alignment ≅ delta, paper related work)."""

from .changes import (
    Delta,
    NodeChange,
    VersionChanges,
    compute_delta,
    diff,
    render_delta,
)

__all__ = [
    "Delta",
    "NodeChange",
    "VersionChanges",
    "compute_delta",
    "diff",
    "render_delta",
]
