"""Deltas between graph versions (alignment ≅ delta, paper related work)."""

from .changes import Delta, NodeChange, compute_delta, render_delta

__all__ = ["Delta", "NodeChange", "compute_delta", "render_delta"]
