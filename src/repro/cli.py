"""Command-line interface: ``rdf-align`` (or ``python -m repro``).

Subcommands
-----------

``align``
    Align two RDF files (N-Triples or Turtle, sniffed) and print the
    aligned pairs, a summary, or a serializable JSON report.
``stats``
    Node/edge statistics of an RDF file.
``generate``
    Write a version of one of the synthetic datasets as N-Triples.
``synth``
    Generate a seeded synthetic evolution history (shape + mutation
    operators), write every version as N-Triples plus a manifest, and
    optionally run the differential oracle on it (``--check``).
``experiment``
    Run paper-figure experiments and save reports (``--store`` loads the
    VersionStore from a persisted archive).
``store``
    Persist a dataset's VersionStore to disk (``save``), reload and
    summarize it (``load``), list an archive's keys (``ls``), or
    recompute its checksums (``verify``, with ``--quarantine`` to
    isolate corrupt blocks for rebuild-from-source).
``lint``
    Run the reprolint static-analysis checks
    (:mod:`repro.analysis`) over the source tree; all flags are
    forwarded to ``python -m repro.analysis``.

Every alignment flag is collected into one
:class:`~repro.align.config.AlignConfig` and handed to the session API —
the CLI threads no raw keyword arguments.  The ``--method`` choices come
from the method registry, so ``register_method`` extensions (and the
built-in baselines ``similarity_flooding``/``label_invention``) are
selectable without touching this module.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .align import AlignConfig, Aligner, method_names, method_order
from .align.config import PROBE_RULES, SPLITTERS
from .datasets.synthetic import SHAPES, SyntheticConfig, SyntheticGenerator
from .exceptions import ReproError
from .io.atomic import atomic_write_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rdf-align",
        description="RDF graph alignment with bisimulation (PVLDB 2016 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    align_cmd = commands.add_parser(
        "align", help="align two or more RDF files (N-Triples or Turtle)"
    )
    align_cmd.add_argument("source", help="source version (.nt/.ttl)")
    align_cmd.add_argument(
        "targets",
        nargs="+",
        metavar="target",
        help="target version(s); more than one aligns the whole chain "
        "source -> t1 -> t2 -> ...",
    )
    align_cmd.add_argument(
        "--method",
        choices=method_names(),
        default="hybrid",
        help="alignment method (from the method registry, incl. baselines)",
    )
    align_cmd.add_argument("--theta", type=float, default=0.65, help="overlap threshold")
    align_cmd.add_argument(
        "--splitter",
        choices=sorted(SPLITTERS),
        default="words",
        help="literal characterizer for the overlap method",
    )
    align_cmd.add_argument(
        "--probe",
        choices=PROBE_RULES,
        default="paper",
        help="prefix-probe rule of the overlap heuristic",
    )
    align_cmd.add_argument(
        "--engine",
        choices=("reference", "dense"),
        default="reference",
        help="refinement engine (dense = flat-array fast path; with "
        "--method overlap it also runs the whole Algorithm 2 loop on "
        "CSR buffers)",
    )
    align_cmd.add_argument(
        "--k",
        type=int,
        default=3,
        help="round bound of the k-bisimulation family (--method kbisim/"
        "kbisim_deblank); k at or above the graph diameter reproduces "
        "the full bisimulation fixpoint",
    )
    align_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the k-bisimulation signature shard "
        "pool (0 = one per CPU; identical results, less wall-clock)",
    )
    align_cmd.add_argument(
        "--incremental",
        action="store_true",
        help="maintain the chain's deblanking fixpoints under per-step "
        "deltas instead of refining every pair from scratch (identical "
        "results, less work on long version chains)",
    )
    align_cmd.add_argument(
        "--pairs", action="store_true", help="print every aligned pair (TSV)"
    )
    align_cmd.add_argument("--output", help="write pairs to this file instead of stdout")
    align_cmd.add_argument(
        "--report",
        help="write a serializable AlignmentReport (JSON, schema "
        "repro/alignment-report) to this path",
    )

    stats_cmd = commands.add_parser("stats", help="node/edge statistics of a file")
    stats_cmd.add_argument("file", help="an RDF file (N-Triples or Turtle)")

    delta_cmd = commands.add_parser(
        "delta", help="change report between two versions (alignment-based)"
    )
    delta_cmd.add_argument("source", help="source version (.nt/.ttl)")
    delta_cmd.add_argument("target", help="target version (.nt/.ttl)")
    delta_cmd.add_argument(
        "--method",
        choices=method_order(),
        default="hybrid",
        help="alignment method (partition methods only: delta walks classes)",
    )
    delta_cmd.add_argument("--limit", type=int, default=20, help="entries per section")
    delta_cmd.add_argument(
        "--engine",
        choices=("reference", "dense"),
        default="reference",
        help="refinement engine (dense = flat-array fast path)",
    )

    generate_cmd = commands.add_parser("generate", help="write a synthetic dataset version")
    generate_cmd.add_argument(
        "dataset", choices=("efo", "gtopdb", "dbpedia"), help="dataset family"
    )
    generate_cmd.add_argument("--graph-version", type=int, default=1, help="1-based version")
    generate_cmd.add_argument("--scale", type=float, default=0.5)
    generate_cmd.add_argument("--seed", type=int, default=None)
    generate_cmd.add_argument("--out", required=True, help="output .nt path")

    synth_cmd = commands.add_parser(
        "synth",
        help="generate a seeded synthetic evolution history (multi-version)",
    )
    synth_cmd.add_argument(
        "--seed", type=int, default=None, help="generator seed (default 7)"
    )
    synth_cmd.add_argument(
        "--shape",
        choices=SHAPES,
        default=None,
        help="base-graph shape of the history (default erdos_renyi)",
    )
    synth_cmd.add_argument(
        "--versions", type=int, default=None, help="history length (default 4)"
    )
    synth_cmd.add_argument("--scale", type=float, default=None)
    synth_cmd.add_argument(
        "--entities", type=int, default=None, help="entity count at scale 1.0"
    )
    synth_cmd.add_argument(
        "--blank-density", type=float, default=None, help="blank-node fraction"
    )
    synth_cmd.add_argument(
        "--literal-noise",
        type=float,
        default=None,
        help="per-step fraction of literals replaced wholesale",
    )
    synth_cmd.add_argument(
        "--config",
        default=None,
        help="load a full SyntheticConfig from this JSON file (e.g. a CI "
        "differential artifact); explicit flags override its fields",
    )
    synth_cmd.add_argument(
        "--out",
        default="results/synthetic",
        help="output directory for the version files and manifest",
    )
    synth_cmd.add_argument(
        "--check",
        action="store_true",
        help="run the differential oracle on the generated history "
        "(every registered method x engine x jobs)",
    )

    experiment_cmd = commands.add_parser("experiment", help="run paper-figure experiments")
    experiment_cmd.add_argument(
        "names",
        nargs="*",
        help="experiment names (default: all); e.g. figure13",
    )
    experiment_cmd.add_argument("--scale", type=float, default=None)
    experiment_cmd.add_argument("--seed", type=int, default=None)
    experiment_cmd.add_argument("--theta", type=float, default=None)
    experiment_cmd.add_argument(
        "--engine",
        choices=("reference", "dense"),
        default=None,
        help="refinement engine for experiments that accept one "
        "(figure13/14/15 overlap runs and the figure16 timings)",
    )
    experiment_cmd.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the experiment cells (0 = one per CPU; "
        "default: serial).  Parallel reports are byte-identical to serial "
        "ones — cells are sharded with a deterministic merge",
    )
    experiment_cmd.add_argument("--out", default="results", help="report directory")
    experiment_cmd.add_argument(
        "--no-check", action="store_true", help="skip the shape checks"
    )
    experiment_cmd.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="load the experiments' VersionStore from a persisted archive "
        "(see 'rdf-align store save') instead of regenerating the dataset; "
        "results are byte-identical either way",
    )

    store_cmd = commands.add_parser(
        "store", help="persist/inspect a VersionStore archive on disk"
    )
    store_actions = store_cmd.add_subparsers(dest="store_command", required=True)
    store_save = store_actions.add_parser(
        "save", help="materialize a dataset's version store and write it to disk"
    )
    store_save.add_argument(
        "--family",
        required=True,
        help="dataset family (efo/gtopdb/dbpedia or synthetic_<shape>)",
    )
    store_save.add_argument("--scale", type=float, default=0.35)
    store_save.add_argument("--seed", type=int, default=234)
    store_save.add_argument("--versions", type=int, default=10)
    store_save.add_argument("--out", required=True, help="archive directory")
    store_load = store_actions.add_parser(
        "load", help="reload a persisted store and print its contents"
    )
    store_load.add_argument("path", help="archive directory")
    store_ls = store_actions.add_parser(
        "ls", help="list the keys of a persisted store archive"
    )
    store_ls.add_argument("path", help="archive directory")
    store_verify = store_actions.add_parser(
        "verify",
        help="recompute every block's checksum; exit 1 on corruption",
    )
    store_verify.add_argument("path", help="archive directory")
    store_verify.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt block files into quarantine/ and drop them "
        "from the manifest so the next load rebuilds them from the "
        "version graphs",
    )

    lint_cmd = commands.add_parser(
        "lint",
        add_help=False,
        help="run the reprolint static-analysis checks on the source tree "
        "(all flags forwarded; see `rdf-align lint --help`)",
    )
    lint_cmd.add_argument("lint_args", nargs=argparse.REMAINDER)
    return parser


def _command_align(args: argparse.Namespace) -> int:
    config = AlignConfig(
        method=args.method,
        theta=args.theta,
        engine=args.engine,
        probe=args.probe,
        splitter=args.splitter,
        jobs=args.jobs,
        k=args.k,
        incremental=args.incremental,
    )
    aligner = Aligner(config)
    history = [args.source, *args.targets]
    chain = len(history) > 2
    if chain or config.incremental:
        results = aligner.align_chain(history)
    else:
        results = [aligner.align(args.source, args.targets[0])]

    pair_lines: list[str] = []
    for step, result in enumerate(results):
        unaligned_source, unaligned_target = result.unaligned_counts()
        prefix = f"step={step + 1} " if chain else ""
        print(
            f"{prefix}method={result.method} "
            f"matched_entities={result.matched_entities()} "
            f"unaligned_source={unaligned_source} "
            f"unaligned_target={unaligned_target}"
        )
        if args.pairs or args.output:
            if chain:
                pair_lines.append(
                    f"# step {step + 1}: {history[step]} -> {history[step + 1]}"
                )
            for source_node, target_node in sorted(
                result.alignment.pairs(),
                key=lambda pair: (repr(pair[0]), repr(pair[1])),
            ):
                source_term = result.graph.original(source_node)
                target_term = result.graph.original(target_node)
                pair_lines.append(f"{source_term!r}\t{target_term!r}")
    if args.pairs or args.output:
        text = "\n".join(pair_lines) + ("\n" if pair_lines else "")
        if args.output:
            atomic_write_text(args.output, text)
            print(f"wrote {len(pair_lines)} pairs to {args.output}")
        else:
            sys.stdout.write(text)
    if args.report:
        if chain:
            import json

            payload = [result.report(config).to_dict() for result in results]
            atomic_write_text(
                args.report, json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        else:
            results[0].report(config).save(args.report)
        print(f"wrote report to {args.report}")
    return 0


def _command_delta(args: argparse.Namespace) -> int:
    from .delta import compute_delta, render_delta

    config = AlignConfig(method=args.method, engine=args.engine)
    result = Aligner(config).align(args.source, args.target)
    delta = compute_delta(result.graph, result.partition)
    print(render_delta(result.graph, delta, limit=args.limit))
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from .io import load_graph

    graph = load_graph(args.file)
    stats = graph.stats()
    for key, value in stats.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    from .datasets.dbpedia import DBpediaCategoryGenerator
    from .datasets.efo import EFOGenerator
    from .datasets.gtopdb import GtoPdbGenerator
    from .io import ntriples

    factories = {
        "efo": lambda: EFOGenerator(
            scale=args.scale, **({"seed": args.seed} if args.seed is not None else {})
        ),
        "gtopdb": lambda: GtoPdbGenerator(
            scale=args.scale, **({"seed": args.seed} if args.seed is not None else {})
        ),
        "dbpedia": lambda: DBpediaCategoryGenerator(
            scale=args.scale, **({"seed": args.seed} if args.seed is not None else {})
        ),
    }
    generator = factories[args.dataset]()
    graph = generator.graph(args.graph_version - 1)
    ntriples.dump_path(graph, args.out)
    stats = graph.stats()
    print(
        f"wrote {args.dataset} v{args.graph_version} to {args.out} "
        f"({stats.num_edges} triples, {stats.num_nodes} nodes)"
    )
    return 0


def _command_synth(args: argparse.Namespace) -> int:
    import json
    import os

    from .datasets.synthetic import history_stats
    from .io import ntriples

    overrides = {
        key: getattr(args, key)
        for key in (
            "seed", "shape", "versions", "scale", "entities",
        )
        if getattr(args, key) is not None
    }
    if args.blank_density is not None:
        overrides["blank_density"] = args.blank_density
    if args.literal_noise is not None:
        overrides["literal_noise"] = args.literal_noise
    if args.config:
        from .exceptions import ConfigError

        with open(args.config, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as error:
                raise ConfigError(
                    f"--config {args.config} is not JSON: {error}"
                ) from None
        # A differential artifact nests the config; a bare config is flat.
        if isinstance(payload, dict):
            payload = payload.get("config", payload)
        config = SyntheticConfig.from_dict(payload)
        config = config.evolve(**overrides)
    else:
        config = SyntheticConfig(**overrides)

    generator = SyntheticGenerator.shared(config)
    os.makedirs(args.out, exist_ok=True)
    files = []
    for index in range(config.versions):
        name = f"{config.shape}-seed{config.seed}-v{index + 1}.nt"
        path = os.path.join(args.out, name)
        ntriples.dump_path(generator.graph(index), path)
        files.append(name)
    manifest = {
        "schema": "repro/synthetic-manifest",
        "version": 1,
        "config": config.to_dict(),
        "files": files,
        "stats": history_stats(generator),
        "ground_truth_sizes": [
            len(generator.ground_truth(index, index + 1))
            for index in range(config.versions - 1)
        ],
    }
    manifest_path = os.path.join(args.out, "manifest.json")
    atomic_write_text(
        manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    for row, name in zip(manifest["stats"], files):
        print(
            f"wrote {os.path.join(args.out, name)} "
            f"({row['edges']} triples, {row['nodes']} nodes, "
            f"{row['blanks']} blanks)"
        )
    print(f"wrote manifest to {manifest_path}")
    if args.check:
        from .testing.differential import run_differential

        report = run_differential(config, name=f"synth-{config.shape}")
        print(report.summary())
        if not report.ok:
            for divergence in report.divergences:
                print("  " + divergence.render())
            artifact = os.path.join(args.out, "differential-failure.json")
            atomic_write_text(
                artifact, json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
            )
            print(f"differential artifact written to {artifact}")
            return 1
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from .experiments.runner import run_experiments

    # All alignment settings fold into one config; dataset settings
    # (scale/seed) stay per-figure parameters.
    overrides = {}
    for key in ("theta", "engine", "jobs"):
        value = getattr(args, key)
        if value is not None:
            overrides[key] = value
    if args.store is not None:
        overrides["backend"] = args.store
    config = AlignConfig().evolve(**overrides) if overrides else None
    parameters = {}
    for key in ("scale", "seed"):
        value = getattr(args, key)
        if value is not None:
            parameters[key] = value
    results = run_experiments(
        args.names or None,
        out_dir=args.out,
        check=not args.no_check,
        progress=print,
        config=config,
        **parameters,
    )
    for result in results.values():
        print()
        print(result.render())
    print(f"\nreports saved under {args.out}/")
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from .experiments.persist import DiskBackend, describe
    from .experiments.store import VersionStore

    if args.store_command == "save":
        store = VersionStore.shared(
            args.family, scale=args.scale, seed=args.seed, versions=args.versions
        )
        store.prepare(summaries=True, tokens=("trivial", "deblank"), csr=True)
        store.save(args.out)
        print(
            f"saved {args.family} store (scale={args.scale}, seed={args.seed}, "
            f"versions={args.versions}) to {args.out}"
        )
    elif args.store_command == "load":
        store = VersionStore.load(args.path)
        identity = store.identity or {}
        described = ", ".join(
            f"{key}={value}" for key, value in sorted(identity.items())
        )
        print(f"loaded store: {described or f'versions={store.versions}'}")
        for version in range(store.versions):
            stats = store.graph(version).stats()
            print(
                f"  v{version + 1}: {stats.num_edges} triples, "
                f"{stats.num_nodes} nodes"
            )
    elif args.store_command == "verify":
        backend = DiskBackend.open(args.path)
        problems = backend.verify(quarantine=args.quarantine)
        total = sum(len(keys) for kind, keys in backend.keys().items()
                    if kind in ("blob", "array"))
        if not problems:
            print(f"store OK: {total} blocks verified, 0 corrupt")
            return 0
        for problem in problems:
            print(
                f"CORRUPT {problem['kind']:5s} {problem['key']} "
                f"({problem['file']}): {problem['reason']}",
                file=sys.stderr,
            )
        if args.quarantine:
            print(
                f"{len(problems)} corrupt block(s) moved to quarantine/ and "
                "dropped from the manifest; the next load rebuilds them "
                "from the version graphs",
                file=sys.stderr,
            )
        else:
            print(
                f"{len(problems)} corrupt block(s) found "
                "(re-run with --quarantine to isolate them)",
                file=sys.stderr,
            )
        return 1
    else:  # ls
        for line in describe(DiskBackend.open(args.path)):
            print(line)
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import main as lint_main

    return lint_main(args.lint_args)


_COMMANDS = {
    "align": _command_align,
    "delta": _command_delta,
    "stats": _command_stats,
    "generate": _command_generate,
    "synth": _command_synth,
    "experiment": _command_experiment,
    "store": _command_store,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forwarded before parsing: argparse.REMAINDER refuses to
        # capture a leading option (`rdf-align lint --json`), so the
        # lint flags never pass through _build_parser at all.
        from .analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = _build_parser()
    args = parser.parse_args(arguments)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # A Ctrl-C mid-pooled-run must not leak published /dev/shm
        # segments (the pool's context manager may not get to unwind if
        # the interrupt lands between frames) — unlink them here, report
        # the POSIX convention code instead of a traceback.
        from .experiments.shm import cleanup_registries

        cleaned = cleanup_registries()
        suffix = f" ({cleaned} shared-memory registr{'y' if cleaned == 1 else 'ies'} unlinked)" if cleaned else ""
        print(f"interrupted{suffix}", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
