"""Relational schemas: tables, columns, primary and foreign keys.

The GtoPdb experiments (paper Section 5.2) align RDF *exports* of a
relational database.  This module is the schema half of that substrate: a
typed schema with declared primary keys and foreign keys, which both the
integrity checks of :mod:`repro.relational.database` and the direct
mapping of :mod:`repro.relational.direct_mapping` are driven by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from ..exceptions import SchemaError


class ColumnType(Enum):
    """Scalar column types (mapped to XSD datatypes by the direct mapping)."""

    TEXT = "text"
    INTEGER = "integer"
    DECIMAL = "decimal"


@dataclass(frozen=True, slots=True)
class Column:
    """One column: a name, a type and a nullability flag."""

    name: str
    type: ColumnType = ColumnType.TEXT
    nullable: bool = False


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """``columns`` of this table reference the primary key of ``references``."""

    columns: tuple[str, ...]
    references: str

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a foreign key needs at least one column")


@dataclass(frozen=True)
class Table:
    """A table definition: columns, primary key, foreign keys."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r} has duplicate column names")
        missing = set(self.primary_key) - set(names)
        if missing:
            raise SchemaError(
                f"table {self.name!r} primary key uses unknown columns {sorted(missing)}"
            )
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} needs a primary key")
        for fk in self.foreign_keys:
            unknown = set(fk.columns) - set(names)
            if unknown:
                raise SchemaError(
                    f"table {self.name!r} foreign key uses unknown columns {sorted(unknown)}"
                )

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def value_columns(self) -> tuple[Column, ...]:
        """Columns that are neither part of the key nor a foreign key.

        These become literal-valued edges under the direct mapping.
        """
        fk_columns = {c for fk in self.foreign_keys for c in fk.columns}
        return tuple(
            column
            for column in self.columns
            if column.name not in fk_columns
        )


@dataclass(frozen=True)
class Schema:
    """A set of tables with cross-table foreign-key validation."""

    tables: tuple[Table, ...]

    def __post_init__(self) -> None:
        names = [table.name for table in self.tables]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate table names in schema")
        by_name = {table.name: table for table in self.tables}
        for table in self.tables:
            for fk in table.foreign_keys:
                target = by_name.get(fk.references)
                if target is None:
                    raise SchemaError(
                        f"table {table.name!r} references unknown table {fk.references!r}"
                    )
                if len(fk.columns) != len(target.primary_key):
                    raise SchemaError(
                        f"foreign key {table.name}.{fk.columns} does not match the "
                        f"arity of {target.name}'s primary key {target.primary_key}"
                    )

    def table(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise SchemaError(f"schema has no table {name!r}")

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(table.name for table in self.tables)

    def __iter__(self):
        return iter(self.tables)


def make_schema(tables: Iterable[Table]) -> Schema:
    """Build and validate a schema."""
    return Schema(tuple(tables))
