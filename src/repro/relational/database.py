"""A small in-memory relational database with integrity enforcement.

Rows are plain dicts validated against the schema on insert/update:
unknown columns, missing non-nullable values, type mismatches, duplicate
primary keys and dangling foreign keys are all rejected.  Deletes check
that no referencing row is left dangling (no cascades — the evolution
layer deletes in dependency order on purpose, the way curated databases
like GtoPdb do between releases).

Instances are cheaply copyable so that the version-evolution generator can
branch "release N+1" off "release N".
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Iterable, Iterator, Mapping

from ..exceptions import SchemaError
from .schema import Column, ColumnType, Schema, Table

#: A primary-key value tuple.
KeyTuple = tuple[Any, ...]

#: A row as stored: column name → value.
Row = dict[str, Any]

_PYTHON_TYPES = {
    ColumnType.TEXT: str,
    ColumnType.INTEGER: int,
    ColumnType.DECIMAL: (int, float, Decimal),
}


class RelationalDatabase:
    """One version of a relational database instance."""

    __slots__ = ("_schema", "_tables")

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._tables: dict[str, dict[KeyTuple, Row]] = {
            table.name: {} for table in schema
        }

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def key_of(self, table_name: str, row: Mapping[str, Any]) -> KeyTuple:
        table = self._schema.table(table_name)
        return tuple(row[column] for column in table.primary_key)

    def _validate_row(self, table: Table, row: Mapping[str, Any]) -> Row:
        unknown = set(row) - set(table.column_names)
        if unknown:
            raise SchemaError(
                f"{table.name}: unknown columns {sorted(unknown)}"
            )
        validated: Row = {}
        for column in table.columns:
            value = row.get(column.name)
            if value is None:
                if not column.nullable and column.name in row:
                    raise SchemaError(
                        f"{table.name}.{column.name}: explicit NULL in non-nullable column"
                    )
                if not column.nullable and column.name in table.primary_key:
                    raise SchemaError(
                        f"{table.name}.{column.name}: primary key value missing"
                    )
                if not column.nullable and column.name not in row:
                    raise SchemaError(
                        f"{table.name}.{column.name}: value missing"
                    )
                continue
            expected = _PYTHON_TYPES[column.type]
            if not isinstance(value, expected) or isinstance(value, bool):
                raise SchemaError(
                    f"{table.name}.{column.name}: {value!r} is not of type "
                    f"{column.type.value}"
                )
            validated[column.name] = value
        return validated

    def _check_foreign_keys(self, table: Table, row: Row) -> None:
        for fk in table.foreign_keys:
            values = tuple(row.get(column) for column in fk.columns)
            if any(value is None for value in values):
                continue  # nullable reference left unset
            if values not in self._tables[fk.references]:
                raise SchemaError(
                    f"{table.name}: foreign key {fk.columns} -> {fk.references} "
                    f"dangles on {values!r}"
                )

    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: Mapping[str, Any]) -> KeyTuple:
        """Insert a row; returns its primary-key tuple."""
        table = self._schema.table(table_name)
        validated = self._validate_row(table, row)
        key = tuple(validated[column] for column in table.primary_key)
        if key in self._tables[table_name]:
            raise SchemaError(f"{table_name}: duplicate primary key {key!r}")
        self._check_foreign_keys(table, validated)
        self._tables[table_name][key] = validated
        return key

    def update(self, table_name: str, key: KeyTuple, changes: Mapping[str, Any]) -> None:
        """Update non-key columns of an existing row."""
        table = self._schema.table(table_name)
        current = self._tables[table_name].get(key)
        if current is None:
            raise SchemaError(f"{table_name}: no row with key {key!r}")
        if set(changes) & set(table.primary_key):
            raise SchemaError(
                f"{table_name}: primary-key columns cannot be updated "
                "(keys are persistent entity identifiers)"
            )
        merged = dict(current)
        merged.update(changes)
        validated = self._validate_row(table, merged)
        self._check_foreign_keys(table, validated)
        self._tables[table_name][key] = validated

    def delete(self, table_name: str, key: KeyTuple) -> None:
        """Delete a row, refusing if another row still references it."""
        if key not in self._tables[table_name]:
            raise SchemaError(f"{table_name}: no row with key {key!r}")
        for other in self._schema:
            for fk in other.foreign_keys:
                if fk.references != table_name:
                    continue
                for row in self._tables[other.name].values():
                    values = tuple(row.get(column) for column in fk.columns)
                    if values == key:
                        raise SchemaError(
                            f"cannot delete {table_name}{key!r}: referenced by "
                            f"{other.name}"
                        )
        del self._tables[table_name][key]

    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> Iterator[tuple[KeyTuple, Row]]:
        """Iterate (key, row) pairs of a table."""
        if table_name not in self._tables:
            raise SchemaError(f"no table {table_name!r}")
        return iter(self._tables[table_name].items())

    def get(self, table_name: str, key: KeyTuple) -> Row | None:
        return self._tables[table_name].get(key)

    def keys(self, table_name: str) -> set[KeyTuple]:
        if table_name not in self._tables:
            raise SchemaError(f"no table {table_name!r}")
        return set(self._tables[table_name])

    def count(self, table_name: str) -> int:
        return len(self._tables[table_name])

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._tables.values())

    def referencing_keys(self, table_name: str, key: KeyTuple) -> list[tuple[str, KeyTuple]]:
        """All (table, key) rows whose foreign keys point at the given row."""
        referencing: list[tuple[str, KeyTuple]] = []
        for other in self._schema:
            for fk in other.foreign_keys:
                if fk.references != table_name:
                    continue
                for other_key, row in self._tables[other.name].items():
                    values = tuple(row.get(column) for column in fk.columns)
                    if values == key:
                        referencing.append((other.name, other_key))
        return referencing

    def copy(self) -> "RelationalDatabase":
        """An independent copy (rows are copied, values are immutable)."""
        clone = RelationalDatabase(self._schema)
        clone._tables = {
            name: {key: dict(row) for key, row in rows.items()}
            for name, rows in self._tables.items()
        }
        return clone

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={len(rows)}" for name, rows in self._tables.items()
        )
        return f"<RelationalDatabase {sizes}>"
