"""Version-to-version evolution of relational databases.

Curated databases like GtoPdb release a new version every few months; the
changes are inserts of new entities, deletions of retired ones and value
updates — while primary keys stay persistent ("the same entity does not
change its key over different versions", paper Section 5.2).  This module
provides the structural helpers the dataset generator builds on:
dependency-ordered cascading deletes and bulk updates.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..exceptions import SchemaError
from .database import KeyTuple, RelationalDatabase


def delete_with_referents(
    database: RelationalDatabase, table_name: str, key: KeyTuple
) -> list[tuple[str, KeyTuple]]:
    """Delete a row and, transitively, every row referencing it.

    Returns the deleted (table, key) pairs in deletion order (referents
    first).  This models an entity being retired from a curated database:
    its interactions, cross-references etc. disappear with it.
    """
    deleted: list[tuple[str, KeyTuple]] = []
    stack: list[tuple[str, KeyTuple]] = [(table_name, key)]
    # Depth-first: postpone a row until its referents are gone.
    while stack:
        current_table, current_key = stack[-1]
        if database.get(current_table, current_key) is None:
            stack.pop()
            continue
        referents = [
            pair
            for pair in database.referencing_keys(current_table, current_key)
            if database.get(*pair) is not None
        ]
        if referents:
            stack.extend(referents)
            continue
        database.delete(current_table, current_key)
        deleted.append((current_table, current_key))
        stack.pop()
    return deleted


def bulk_update(
    database: RelationalDatabase,
    table_name: str,
    updates: Mapping[KeyTuple, Mapping[str, Any]],
) -> int:
    """Apply many single-row updates; returns the number of rows touched."""
    for key, changes in updates.items():
        database.update(table_name, key, changes)
    return len(updates)


def next_version(database: RelationalDatabase) -> RelationalDatabase:
    """Branch a new version off *database* (copy-on-write semantics)."""
    return database.copy()


def diff_keys(
    old: RelationalDatabase, new: RelationalDatabase
) -> dict[str, tuple[set[KeyTuple], set[KeyTuple], set[KeyTuple]]]:
    """Per-table (inserted, deleted, persistent) key sets between versions."""
    if old.schema is not new.schema and old.schema != new.schema:
        raise SchemaError("can only diff versions sharing a schema")
    result: dict[str, tuple[set[KeyTuple], set[KeyTuple], set[KeyTuple]]] = {}
    for table in old.schema:
        old_keys = old.keys(table.name)
        new_keys = new.keys(table.name)
        result[table.name] = (
            new_keys - old_keys,
            old_keys - new_keys,
            old_keys & new_keys,
        )
    return result


def changed_rows(
    old: RelationalDatabase, new: RelationalDatabase, table_name: str
) -> set[KeyTuple]:
    """Persistent keys whose row content differs between the versions."""
    shared = old.keys(table_name) & new.keys(table_name)
    return {
        key
        for key in shared
        if old.get(table_name, key) != new.get(table_name, key)
    }
