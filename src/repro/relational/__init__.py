"""Mini relational database substrate and the W3C Direct Mapping to RDF."""

from .database import KeyTuple, RelationalDatabase, Row
from .direct_mapping import (
    EntityKey,
    attribute_uri,
    direct_mapping,
    reference_uri,
    row_uri,
    table_uri,
    value_literal,
)
from .evolution import (
    bulk_update,
    changed_rows,
    delete_with_referents,
    diff_keys,
    next_version,
)
from .schema import Column, ColumnType, ForeignKey, Schema, Table, make_schema

__all__ = [
    "Column",
    "ColumnType",
    "EntityKey",
    "ForeignKey",
    "KeyTuple",
    "RelationalDatabase",
    "Row",
    "Schema",
    "Table",
    "attribute_uri",
    "bulk_update",
    "changed_rows",
    "delete_with_referents",
    "diff_keys",
    "direct_mapping",
    "make_schema",
    "next_version",
    "reference_uri",
    "row_uri",
    "table_uri",
    "value_literal",
]
