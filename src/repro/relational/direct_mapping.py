"""The W3C Direct Mapping of relational data to RDF [18].

The paper exported GtoPdb with the "standard (W3C recommended) approach"
(via D2RQ); this module implements the same mapping from scratch:

1. every row is identified by a *row URI* built from a base prefix, the
   table name and the primary-key values
   (``<base>ligand/685``, composite keys join ``col=value`` pairs);
2. a type triple ``row rdf:type <base><table>`` declares the row's table;
3. every non-referential value column becomes a literal-valued edge whose
   predicate is ``<base><table>#<column>`` and whose object carries the
   matching XSD datatype;
4. every foreign key becomes an edge to the referenced row's URI with
   predicate ``<base><table>#ref-<columns>``.

Exporting two database versions with *different base prefixes* reproduces
the paper's experimental setup: no URIs are shared between the versions,
so only the hybrid/overlap alignments (plus shared literal values) can
reconnect them, while the persistent keys provide exact ground truth.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any

from ..model.labels import Literal, URI
from ..model.namespaces import RDF_TYPE, XSD_DECIMAL, XSD_INTEGER
from ..model.rdf import RDFGraph
from .database import KeyTuple, RelationalDatabase
from .schema import Column, ColumnType, Table

#: Ground-truth entity keys minted by the mapping:
#: rows are ("row", table, key), tables ("table", table) and
#: attributes ("attribute", table, column) / ("reference", table, columns).
EntityKey = tuple


def _encode(value: Any) -> str:
    text = str(value)
    return text.replace("%", "%25").replace("/", "%2F").replace(";", "%3B").replace("=", "%3D")


def row_uri(base: str, table: Table, key: KeyTuple) -> URI:
    """The row identifier URI (W3C DM's "row node")."""
    if len(table.primary_key) == 1:
        local = _encode(key[0])
    else:
        local = ";".join(
            f"{column}={_encode(value)}"
            for column, value in zip(table.primary_key, key)
        )
    return URI(f"{base}{table.name}/{local}")


def table_uri(base: str, table: Table) -> URI:
    """The table class URI."""
    return URI(f"{base}{table.name}")


def attribute_uri(base: str, table: Table, column: Column) -> URI:
    """The literal-attribute predicate URI."""
    return URI(f"{base}{table.name}#{column.name}")


def reference_uri(base: str, table: Table, columns: tuple[str, ...]) -> URI:
    """The foreign-key predicate URI."""
    return URI(f"{base}{table.name}#ref-{'-'.join(columns)}")


def value_literal(column: Column, value: Any) -> Literal:
    """A typed literal for a column value."""
    if column.type is ColumnType.INTEGER:
        return Literal(str(value), datatype=XSD_INTEGER)
    if column.type is ColumnType.DECIMAL:
        if isinstance(value, Decimal):
            text = str(value)
        else:
            text = repr(float(value))
        return Literal(text, datatype=XSD_DECIMAL)
    return Literal(str(value))


def direct_mapping(
    database: RelationalDatabase,
    base: str,
    include_types: bool = True,
    include_keys: bool = False,
) -> tuple[RDFGraph, dict[EntityKey, URI]]:
    """Export *database* as RDF under the given *base* prefix.

    Returns the graph and the entity map used for ground truth: every
    minted URI is keyed by a prefix-independent entity key, so two exports
    of successive versions can be joined on those keys.

    ``include_keys`` controls whether primary-key columns also appear as
    literal-valued edges.  The default matches the paper's experimental
    framing — "all that is kept are the non-key data values and the
    foreign key constraints" — keys identify rows through their URIs only.
    """
    graph = RDFGraph()
    entities: dict[EntityKey, URI] = {}

    for table in database.schema:
        entities[("table", table.name)] = table_uri(base, table)
        fk_columns = {c for fk in table.foreign_keys for c in fk.columns}
        for column in table.columns:
            if column.name in fk_columns:
                continue
            if not include_keys and column.name in table.primary_key:
                continue
            entities[("attribute", table.name, column.name)] = attribute_uri(
                base, table, column
            )
        for fk in table.foreign_keys:
            entities[("reference", table.name, fk.columns)] = reference_uri(
                base, table, fk.columns
            )

    for table in database.schema:
        class_node = table_uri(base, table)
        fk_columns = {c for fk in table.foreign_keys for c in fk.columns}
        referenced_tables = {
            fk.columns: database.schema.table(fk.references)
            for fk in table.foreign_keys
        }
        for key, row in database.rows(table.name):
            subject = row_uri(base, table, key)
            entities[("row", table.name, key)] = subject
            if include_types:
                graph.add(subject, RDF_TYPE, class_node)
            for column in table.columns:
                if column.name in fk_columns:
                    continue
                if not include_keys and column.name in table.primary_key:
                    continue
                value = row.get(column.name)
                if value is None:
                    continue
                graph.add(
                    subject,
                    attribute_uri(base, table, column),
                    value_literal(column, value),
                )
            for fk in table.foreign_keys:
                values = tuple(row.get(column) for column in fk.columns)
                if any(value is None for value in values):
                    continue
                graph.add(
                    subject,
                    reference_uri(base, table, fk.columns),
                    row_uri(base, referenced_tables[fk.columns], values),
                )
    return graph, entities
