"""String edit distance (Levenshtein) and literal tokenization.

`σEdit` uses the *normalized* string edit distance on unaligned literal
pairs: ``lev(s, t) / max(|s|, |t|)`` (Example 5: "abc" vs "ac" gives 1/3).
The overlap heuristic characterizes literals by their word set via
:func:`split_words` (Algorithm 2's ``split`` function).

Three Levenshtein variants are provided and benchmarked against each
other in ``bench_micro_levenshtein``:

* :func:`levenshtein` — classic two-row dynamic program,
* :func:`levenshtein_banded` — diagonal band when only distances below a
  cutoff matter (O(cutoff·max(|s|,|t|)) time),
* early-exit length test built into :func:`bounded_normalized_levenshtein`.
"""

from __future__ import annotations

import re

_WORD_PATTERN = re.compile(r"[^\W_]+", re.UNICODE)


def levenshtein(first: str, second: str) -> int:
    """The unit-cost string edit distance (insert/delete/substitute).

    >>> levenshtein("abc", "ac")
    1
    """
    if first == second:
        return 0
    # Keep the shorter string in the inner dimension.
    if len(first) < len(second):
        first, second = second, first
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    current = [0] * (len(second) + 1)
    for row, char_first in enumerate(first, start=1):
        current[0] = row
        for col, char_second in enumerate(second, start=1):
            substitution = previous[col - 1] + (char_first != char_second)
            deletion = previous[col] + 1
            insertion = current[col - 1] + 1
            best = substitution
            if deletion < best:
                best = deletion
            if insertion < best:
                best = insertion
            current[col] = best
        previous, current = current, previous
    return previous[len(second)]


def levenshtein_banded(first: str, second: str, cutoff: int) -> int:
    """Levenshtein distance, or ``cutoff + 1`` if it exceeds *cutoff*.

    Only cells within *cutoff* of the main diagonal can contribute to a
    distance ≤ cutoff, so the dynamic program is restricted to that band.
    """
    if cutoff < 0:
        return 1 if first != second else 0
    if first == second:
        return 0
    if abs(len(first) - len(second)) > cutoff:
        return cutoff + 1
    if len(first) < len(second):
        first, second = second, first
    columns = len(second)
    big = cutoff + 1
    if columns == 0:
        return len(first) if len(first) <= cutoff else big
    previous = [col if col <= cutoff else big for col in range(columns + 1)]
    for row, char_first in enumerate(first, start=1):
        current = [big] * (columns + 1)
        if row <= cutoff:
            current[0] = row
        window_low = max(1, row - cutoff)
        window_high = min(columns, row + cutoff)
        row_best = current[0]
        for col in range(window_low, window_high + 1):
            substitution = previous[col - 1] + (char_first != second[col - 1])
            deletion = previous[col] + 1
            insertion = current[col - 1] + 1
            best = substitution
            if deletion < best:
                best = deletion
            if insertion < best:
                best = insertion
            if best > big:
                best = big
            current[col] = best
            if best < row_best:
                row_best = best
        if row_best > cutoff:
            return big
        previous = current
    distance = previous[columns]
    return distance if distance <= cutoff else big


def normalized_levenshtein(first: str, second: str) -> float:
    """``lev(s, t) / max(|s|, |t|)`` in [0, 1]; two empty strings give 0.

    >>> normalized_levenshtein("abc", "ac")
    0.3333333333333333
    """
    longest = max(len(first), len(second))
    if longest == 0:
        return 0.0
    return levenshtein(first, second) / longest


def bounded_normalized_levenshtein(first: str, second: str, threshold: float) -> float:
    """Normalized distance, or 1.0 as soon as it provably exceeds *threshold*.

    Uses the banded dynamic program with cutoff ``⌊threshold·max_len⌋`` so
    that clearly-dissimilar pairs are rejected in linear time.
    """
    longest = max(len(first), len(second))
    if longest == 0:
        return 0.0
    cutoff = int(threshold * longest)
    distance = levenshtein_banded(first, second, cutoff)
    if distance > cutoff:
        return 1.0
    return distance / longest


def split_words(text: str) -> frozenset[str]:
    """Split a literal value into its set of words (Algorithm 2's ``split``).

    Words are maximal alphanumeric runs, lowercased; the characterizing
    set drives the overlap heuristic's inverted index.

    >>> sorted(split_words("University of Edinburgh"))
    ['edinburgh', 'of', 'university']
    """
    return frozenset(match.group(0).lower() for match in _WORD_PATTERN.finditer(text))


def character_set(text: str) -> frozenset[str]:
    """Characterize a literal by its set of (lowercased) characters.

    An alternative to :func:`split_words` for data whose literals are
    single tokens — word sets of such literals are disjoint after any edit,
    so the overlap filter would reject every candidate.  The paper's toy
    example (Figure 7: "abc" vs "ac") is in this regime.
    """
    return frozenset(text.lower()) - frozenset(" \t\n")


def qgrams(text: str, q: int = 2) -> frozenset[str]:
    """Positional-free padded q-grams — a middle ground characterizer.

    >>> sorted(qgrams("abc"))
    ['#a', 'ab', 'bc', 'c#']
    """
    padded = "#" + text.lower() + "#"
    if len(padded) <= q:
        return frozenset((padded,))
    return frozenset(padded[i:i + q] for i in range(len(padded) - q + 1))
