"""The edit-distance node metric `σEdit` (paper Section 4.2).

`σEdit` refines the hybrid alignment with robustness under edits:

* pairs aligned by Hybrid are at distance 0;
* pairs of *unaligned* literals are at normalized string edit distance;
* any other pair involving a Hybrid-aligned node, or mixing a literal with
  a non-literal, is at distance 1;
* a pair of unaligned non-literal nodes is at the cost of the optimal
  (Hungarian) matching between their outbound edge sets — matching edge
  ``(p1, o1)`` against ``(p2, o2)`` costs ``σ(p1, p2) ⊕ σ(o1, o2)``, every
  unmatched edge costs 1, and the total is normalized by
  ``f = max(|out(n)|, |out(m)|)`` — evaluated at the fixpoint of this very
  definition.

The fixpoint is computed by Jacobi iteration from 0 (distances increase
monotonically to the *least* fixpoint, mirroring bisimulation being the
greatest alignment).  The paper's formal definition lives in an appendix
that is not available; this reading reproduces every worked number of
Figure 7 (see DESIGN.md §5 for the full derivation).

The matrix is quadratic in the number of unaligned nodes — the very
scalability problem the overlap alignment solves — so the implementation
guards against accidentally huge inputs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from ..exceptions import ExperimentError
from ..model.graph import NodeId
from ..model.labels import Literal
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from .hungarian import matching_with_deletion
from .oplus import oplus
from .string_distance import normalized_levenshtein


@lru_cache(maxsize=65536)
def literal_value_distance(first: str, second: str) -> float:
    """Normalized string edit distance, cached by literal *value* pair.

    Version chains repeat the same literal values across nodes, versions
    and σEdit instances (curation edits touch a few percent per release),
    so the cache is shared process-wide rather than per matrix.
    """
    return normalized_levenshtein(first, second)


class EditDistance:
    """Materialized `σEdit` for a combined graph.

    Parameters
    ----------
    graph:
        The combined graph ``G1 ⊎ G2``.
    base:
        The hybrid partition to refine (computed if omitted; must share
        *interner* when supplied).
    epsilon / max_rounds:
        Fixpoint controls for the Jacobi iteration.
    max_pairs:
        Safety valve on the ``|UN1| × |UN2|`` matrix size.
    """

    def __init__(
        self,
        graph: CombinedGraph,
        base: Partition | None = None,
        interner: ColorInterner | None = None,
        epsilon: float = 1e-6,
        max_rounds: int = 200,
        max_pairs: int = 1_000_000,
    ) -> None:
        from ..core.hybrid import hybrid_partition  # late import to avoid a cycle

        self._graph = graph
        if base is None:
            base = hybrid_partition(graph, interner or ColorInterner())
        self._base = base
        alignment = PartitionAlignment(graph, base)
        unaligned_source = alignment.unaligned_source()
        unaligned_target = alignment.unaligned_target()
        self._unaligned_literals_source = {
            n for n in unaligned_source if graph.is_literal_node(n)
        }
        self._unaligned_literals_target = {
            m for m in unaligned_target if graph.is_literal_node(m)
        }
        self._unaligned_source = sorted(
            (n for n in unaligned_source if not graph.is_literal_node(n)), key=repr
        )
        self._unaligned_target = sorted(
            (m for m in unaligned_target if not graph.is_literal_node(m)), key=repr
        )
        pair_count = len(self._unaligned_source) * len(self._unaligned_target)
        if pair_count > max_pairs:
            raise ExperimentError(
                f"σEdit would materialize {pair_count} node pairs (> {max_pairs}); "
                "use the overlap alignment for graphs of this size"
            )
        self._matrix: dict[tuple[NodeId, NodeId], float] = {
            (n, m): 0.0 for n in self._unaligned_source for m in self._unaligned_target
        }
        self._epsilon = epsilon
        self._max_rounds = max_rounds
        self._rounds_used = 0
        self._run_fixpoint()

    # ------------------------------------------------------------------
    @property
    def base_partition(self) -> Partition:
        """The hybrid partition that `σEdit` refines."""
        return self._base

    @property
    def rounds_used(self) -> int:
        """How many Jacobi rounds the fixpoint took."""
        return self._rounds_used

    # ------------------------------------------------------------------
    def _literal_distance(self, source: NodeId, target: NodeId) -> float:
        first = self._graph.label(source)
        second = self._graph.label(target)
        assert isinstance(first, Literal) and isinstance(second, Literal)
        return literal_value_distance(first.value, second.value)

    def _current(self, source: NodeId, target: NodeId) -> float:
        """`σEdit` under the current matrix estimate."""
        if self._base[source] == self._base[target]:
            return 0.0
        value = self._matrix.get((source, target))
        if value is not None:
            return value
        if (
            source in self._unaligned_literals_source
            and target in self._unaligned_literals_target
        ):
            return self._literal_distance(source, target)
        return 1.0

    def _matching_value(self, source: NodeId, target: NodeId) -> float:
        out_source = sorted(self._graph.out(source), key=repr)
        out_target = sorted(self._graph.out(target), key=repr)
        normalizer = max(len(out_source), len(out_target))
        if normalizer == 0:
            # Two unaligned sinks: no distinguishing content.
            return 0.0
        cost = [
            [
                oplus(self._current(p1, p2), self._current(o1, o2))
                for (p2, o2) in out_target
            ]
            for (p1, o1) in out_source
        ]
        __, total = matching_with_deletion(cost, deletion_cost=1.0)
        value = total / normalizer
        return value if value < 1.0 else 1.0

    def _run_fixpoint(self) -> None:
        if not self._matrix:
            return
        for round_number in range(1, self._max_rounds + 1):
            updates: dict[tuple[NodeId, NodeId], float] = {}
            delta = 0.0
            for (source, target) in self._matrix:
                new_value = self._matching_value(source, target)
                updates[(source, target)] = new_value
                change = new_value - self._matrix[(source, target)]
                if change > delta:
                    delta = change
            self._matrix = updates
            self._rounds_used = round_number
            if delta < self._epsilon:
                return

    # ------------------------------------------------------------------
    def distance(self, source: NodeId, target: NodeId) -> float:
        """``σEdit(source, target)`` for a source-side and target-side node."""
        return self._current(source, target)

    def aligned_pairs(self, theta: float) -> Iterator[tuple[NodeId, NodeId, float]]:
        """``Align_θ(σEdit)`` restricted to pairs that can clear *theta*.

        Yields Hybrid-aligned pairs (distance 0), unaligned literal pairs
        and unaligned non-literal pairs with distance ≤ θ; pairs pinned at
        distance 1 by the definition are never yielded (assuming θ < 1).
        """
        alignment = PartitionAlignment(self._graph, self._base)
        for source, target in alignment.pairs():
            yield source, target, 0.0
        for source in self._unaligned_literals_source:
            for target in self._unaligned_literals_target:
                value = self._literal_distance(source, target)
                if value <= theta:
                    yield source, target, value
        for pair, value in self._matrix.items():
            if value <= theta:
                yield pair[0], pair[1], value
