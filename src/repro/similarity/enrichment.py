"""Enrichment of weighted partitions with close pairs (paper Section 4.4).

Newly discovered pairs of close nodes arrive as a weighted bipartite graph
``H = (A, B, M, d)`` with ``A``/``B`` unaligned source/target nodes and
``d`` the distance on the matched pairs.  ``Enrich(ξ, H)``

1. decomposes ``H`` into connected components (in the typical evolving-RDF
   case these are near 1-to-1 matches, so components are tiny),
2. gives every component a fresh color — its members now form one cluster,
3. assigns every source member half of the maximum ``⊕``-shortest-path
   distance to any target member of its component (and symmetrically),
   which guarantees ``d*(a, b) ≤ w(a) ⊕ w(b)`` for all matched pairs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..model.graph import NodeId
from ..partition.interner import ColorInterner
from ..partition.weighted import WeightedPartition


@dataclass(frozen=True)
class WeightedBipartiteGraph:
    """``H = (A, B, M, d)``: matched pairs with their distances.

    Built from the edge map alone, so no node is ever isolated (the paper
    assumes isolated nodes are removed from consideration).
    """

    edges: Mapping[tuple[NodeId, NodeId], float] = field(default_factory=dict)

    @property
    def source_nodes(self) -> frozenset[NodeId]:
        """``A`` — the matched source-side nodes."""
        return frozenset(pair[0] for pair in self.edges)

    @property
    def target_nodes(self) -> frozenset[NodeId]:
        """``B`` — the matched target-side nodes."""
        return frozenset(pair[1] for pair in self.edges)

    @property
    def is_empty(self) -> bool:
        return not self.edges

    def __len__(self) -> int:
        return len(self.edges)

    def adjacency(self) -> dict[NodeId, list[tuple[NodeId, float]]]:
        """Undirected adjacency with edge distances."""
        adjacency: dict[NodeId, list[tuple[NodeId, float]]] = {}
        for (source, target), distance in self.edges.items():
            adjacency.setdefault(source, []).append((target, distance))
            adjacency.setdefault(target, []).append((source, distance))
        return adjacency

    def components(self) -> list[frozenset[NodeId]]:
        """Maximal connected components, deterministically ordered."""
        adjacency = self.adjacency()
        seen: set[NodeId] = set()
        components: list[frozenset[NodeId]] = []
        for start in adjacency:
            if start in seen:
                continue
            stack = [start]
            component: set[NodeId] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(
                    neighbor for neighbor, __ in adjacency[node]
                    if neighbor not in component
                )
            seen.update(component)
            components.append(frozenset(component))
        components.sort(key=lambda c: min(repr(node) for node in c))
        return components


def shortest_distances(
    graph: WeightedBipartiteGraph, start: NodeId
) -> dict[NodeId, float]:
    """``d*(start, ·)``: ⊕-shortest-path distances within *start*'s component.

    ``⊕`` is capped addition, and capping is monotone, so the minimum capped
    path length equals the capped minimum plain path length — Dijkstra with
    plain sums followed by a cap at 1 is exact.
    """
    adjacency = graph.adjacency()
    distances: dict[NodeId, float] = {start: 0.0}
    queue: list[tuple[float, int, NodeId]] = [(0.0, 0, start)]
    counter = 0
    while queue:
        distance, __, node = heapq.heappop(queue)
        if distance > distances.get(node, float("inf")):
            continue
        for neighbor, edge_distance in adjacency.get(node, ()):
            candidate = distance + edge_distance
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(queue, (candidate, counter, neighbor))
    return {node: min(d, 1.0) for node, d in distances.items()}


def component_weights(
    graph: WeightedBipartiteGraph, component: frozenset[NodeId]
) -> dict[NodeId, float]:
    """The paper's weight assignment for one component.

    Every source node gets half its maximum ``d*`` distance to a target
    node of the component, and vice versa; then for any matched pair,
    ``d*(a, b) ≤ w(a) ⊕ w(b)`` because each side contributes at least
    ``d*(a, b) / 2``.
    """
    sources = graph.source_nodes & component
    targets = graph.target_nodes & component
    weights: dict[NodeId, float] = {}
    distance_from: dict[NodeId, dict[NodeId, float]] = {
        node: shortest_distances(graph, node) for node in component
    }
    for source in sources:
        reachable = distance_from[source]
        weights[source] = max(reachable.get(target, 1.0) for target in targets) / 2.0
    for target in targets:
        reachable = distance_from[target]
        weights[target] = max(reachable.get(source, 1.0) for source in sources) / 2.0
    return weights


def enrich(
    weighted: WeightedPartition,
    close_pairs: WeightedBipartiteGraph,
    interner: ColorInterner,
    generation: int = 0,
) -> WeightedPartition:
    """``Enrich(ξ, H)``: fold the matched components into the partition.

    *generation* keeps component colors from different enrichment rounds
    distinct (Algorithm 2 calls this once per iteration).
    """
    if close_pairs.is_empty:
        return weighted
    color_updates: dict[NodeId, int] = {}
    weight_updates: dict[NodeId, float] = {}
    for index, component in enumerate(close_pairs.components()):
        color = interner.component_color(generation, index)
        for node in component:
            color_updates[node] = color
        weight_updates.update(component_weights(close_pairs, component))
    return weighted.with_updates(color_updates, weight_updates)
