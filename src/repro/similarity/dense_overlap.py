"""Dense (flat-array) driver for the overlap alignment — Algorithm 2.

The reference :func:`~repro.similarity.overlap_alignment.overlap_partition`
pays three per-generation costs that are invisible on the worked examples
but dominate real workloads:

1. ``PartitionAlignment`` is rebuilt from the full partition every
   generation (O(N) with per-class frozensets) only to answer "which
   nodes are still unaligned?";
2. ``weighted_refine_fixpoint`` Jacobi-iterates the weight recurrence
   one node at a time over per-node Python sets;
3. ``overlap_match``'s characterizations and ``grouped_weights`` walk
   ``graph.out(n)`` dicts per node per round.

This module keeps the exact loop structure of Algorithm 2 — literal
round, then enrich → propagate → rediscover until nothing new — but runs
it against one :class:`~repro.model.csr.CSRGraph` snapshot shared by all
generations:

* colors and weights live in dense-id-indexed buffers; propagation calls
  :func:`repro.core.dense.refine_colors` and
  :func:`repro.core.dense_weights.dense_weight_fixpoint` directly on
  them;
* an :class:`AlignmentTracker` maintains per-color source/target members
  incrementally under recoloring, so the unaligned sets of a generation
  cost O(changed nodes) instead of a full O(N) rebuild;
* out-color characterizations are packed ``(p_color << 32) | o_color``
  integers gathered once per generation over the CSR edge arrays, and
  per-node weight groups are memoized for the round.

The result is equivalent (colors up to renaming, weights within ``ε``)
to the reference engine with identical :class:`OverlapTrace` round
counts; ``tests/test_overlap_dense.py`` asserts the parity and
``benchmarks/test_overlap_dense.py`` enforces the end-to-end speedup.
"""

from __future__ import annotations

from ..core.dense import refine_colors
from ..core.dense_weights import dense_weight_fixpoint
from ..core.refinement import WeightFixpointStats
from ..model.csr import CSRGraph
from ..model.graph import NodeId
from ..model.union import CombinedGraph
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from ..partition.weighted import WeightedPartition
from .enrichment import component_weights
from .oplus import OplusOperator, oplus, oplus_sum
from .overlap import ProbeRule, overlap_match
from .string_distance import split_words
from .weighted_refine import DEFAULT_EPSILON

try:  # pragma: no cover - exercised implicitly by the engine tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class AlignmentTracker:
    """Per-color side membership maintained under recoloring.

    ``PartitionAlignment`` answers the Algorithm 2 loop's only question —
    the per-side unaligned node sets — by re-scanning the whole partition.
    This tracker keeps the same information incrementally: every color
    maps to its source-side and target-side member sets, and the two
    unaligned sets are updated exactly when a recoloring changes them.
    A single :meth:`recolor` costs O(1) except when it flips a color's
    matched status, in which case the members of the opposite side move
    in or out of their unaligned set — work proportional to the real
    alignment change, not to the graph.

    Members are dense node ids; ``unaligned_source``/``unaligned_target``
    are live sets (treat as read-only).
    """

    __slots__ = (
        "_colors", "_is_source", "_source_members", "_target_members",
        "unaligned_source", "unaligned_target",
    )

    def __init__(self, colors: list[int], is_source: list[bool]) -> None:
        self._colors = list(colors)
        self._is_source = is_source
        self._source_members: dict[int, set[int]] = {}
        self._target_members: dict[int, set[int]] = {}
        for dense, color in enumerate(self._colors):
            members = (
                self._source_members if is_source[dense] else self._target_members
            )
            members.setdefault(color, set()).add(dense)
        self.unaligned_source: set[int] = set()
        self.unaligned_target: set[int] = set()
        for color, members in self._source_members.items():
            if color not in self._target_members:
                self.unaligned_source.update(members)
        for color, members in self._target_members.items():
            if color not in self._source_members:
                self.unaligned_target.update(members)

    def color(self, dense: int) -> int:
        return self._colors[dense]

    def recolor(self, dense: int, new_color: int) -> None:
        """Move *dense* to *new_color*, updating the unaligned sets."""
        old_color = self._colors[dense]
        if old_color == new_color:
            return
        self._colors[dense] = new_color
        if self._is_source[dense]:
            own, opposite = self._source_members, self._target_members
            own_unaligned, opposite_unaligned = (
                self.unaligned_source, self.unaligned_target
            )
        else:
            own, opposite = self._target_members, self._source_members
            own_unaligned, opposite_unaligned = (
                self.unaligned_target, self.unaligned_source
            )
        old_members = own[old_color]
        old_members.discard(dense)
        if not old_members:
            del own[old_color]
            orphaned = opposite.get(old_color)
            if orphaned:
                # The old color lost its last node on this side: whatever
                # the other side still keeps there is now unaligned.
                opposite_unaligned.update(orphaned)
        new_members = own.get(new_color)
        adopted = opposite.get(new_color)
        if new_members is None:
            new_members = own[new_color] = set()
            if adopted:
                # First node of this side under the new color: the other
                # side's members there just became aligned.
                opposite_unaligned.difference_update(adopted)
        new_members.add(dense)
        if adopted:
            own_unaligned.discard(dense)
        else:
            own_unaligned.add(dense)


class _NonLiteralRound:
    """One generation's characterizer and ``σNL`` over the CSR buffers.

    Out-color codes (and, for the default ``⊕``, the per-edge pair
    weights) are gathered once for the whole edge array; per-node
    characterizing sets and sorted weight groups are then materialized
    lazily and memoized — each unaligned node pays for its own slice
    exactly once per generation, no matter how many candidate pairs it
    appears in.
    """

    __slots__ = (
        "_csr", "_colors", "_weights", "_operator",
        "_codes", "_pair_weights", "_chars", "_groups",
    )

    def __init__(
        self,
        csr: CSRGraph,
        colors: list[int],
        weights: list[float],
        operator: OplusOperator,
    ) -> None:
        self._csr = csr
        self._colors = colors
        self._weights = weights
        self._operator = operator
        self._chars: dict[int, frozenset[int]] = {}
        self._groups: dict[int, dict[int, list[float]]] = {}
        if _np is not None:
            colors_np = _np.array(colors, dtype=_np.int64)
            preds = _np.frombuffer(csr.out_predicates, dtype=_np.int64)
            objs = _np.frombuffer(csr.out_objects, dtype=_np.int64)
            self._codes = ((colors_np[preds] << 32) | colors_np[objs])
            if operator is oplus:
                weights_np = _np.array(weights, dtype=_np.float64)
                self._pair_weights = _np.minimum(
                    weights_np[preds] + weights_np[objs], 1.0
                )
            else:
                self._pair_weights = None
        else:
            self._codes = None
            self._pair_weights = None

    # -- per-node views (lazy, memoized for the round) -------------------
    def _code_slice(self, dense: int) -> list[int]:
        start, end = self._csr.out_slice(dense)
        if self._codes is not None:
            return self._codes[start:end].tolist()
        colors = self._colors
        csr = self._csr
        return [
            (colors[csr.out_predicates[e]] << 32) | colors[csr.out_objects[e]]
            for e in range(start, end)
        ]

    def characterize(self, node: NodeId) -> frozenset[int]:
        """``out-color_ξ(n)`` as packed integer codes."""
        dense = self._csr.index[node]
        chars = self._chars.get(dense)
        if chars is None:
            chars = self._chars[dense] = frozenset(self._code_slice(dense))
        return chars

    def _grouped_weights(self, dense: int) -> dict[int, list[float]]:
        groups = self._groups.get(dense)
        if groups is not None:
            return groups
        start, end = self._csr.out_slice(dense)
        if self._pair_weights is not None:
            pair_weights = self._pair_weights[start:end].tolist()
        else:
            weights = self._weights
            operator = self._operator
            csr = self._csr
            pair_weights = [
                operator(weights[csr.out_predicates[e]], weights[csr.out_objects[e]])
                for e in range(start, end)
            ]
        groups = {}
        for code, weight in zip(self._code_slice(dense), pair_weights):
            groups.setdefault(code, []).append(weight)
        for values in groups.values():
            values.sort()
        self._groups[dense] = groups
        return groups

    def distance(self, source: NodeId, target: NodeId) -> float:
        """``σ^NL_ξ`` — same coupling rule as the reference closure."""
        index = self._csr.index
        source_dense = index[source]
        target_dense = index[target]
        normalizer = max(
            self._csr.out_degree(source_dense), self._csr.out_degree(target_dense)
        )
        if normalizer == 0:
            return 0.0
        operator = self._operator
        source_groups = self._grouped_weights(source_dense)
        target_groups = self._grouped_weights(target_dense)
        contributions: list[float] = []
        uncoupled = 0
        # Sorted so the float-accumulation order (and thus the bits of
        # the oplus sum) is independent of the hash seed.
        for key in sorted(source_groups.keys() | target_groups.keys()):
            first = source_groups.get(key, ())
            second = target_groups.get(key, ())
            coupled = min(len(first), len(second))
            for position in range(coupled):
                contributions.append(
                    operator(first[position], second[position]) / normalizer
                )
            uncoupled += len(first) + len(second) - 2 * coupled
        total = oplus_sum(contributions, operator)
        return operator(total, uncoupled / normalizer)


def dense_overlap_partition(
    graph: CombinedGraph,
    theta: float = 0.65,
    interner: ColorInterner | None = None,
    base: Partition | None = None,
    probe: ProbeRule = "paper",
    epsilon: float = DEFAULT_EPSILON,
    max_rounds: int = 100,
    operator: OplusOperator = oplus,
    trace=None,
    splitter=split_words,
    csr: CSRGraph | None = None,
) -> WeightedPartition:
    """``Overlap(G, θ)`` — Algorithm 2 over one shared CSR snapshot.

    Drop-in for the reference
    :func:`~repro.similarity.overlap_alignment.overlap_partition`
    (reached via its ``engine="dense"`` parameter): same loop, same
    trace semantics, partitions equivalent up to color renaming and
    weights within ``ε``.  *csr* may supply a prebuilt snapshot (the API
    shares one with the hybrid base construction).
    """
    from ..core.hybrid import hybrid_partition  # late import to avoid a cycle
    from .overlap_alignment import literal_characterizer, literal_distance

    if interner is None:
        interner = ColorInterner()
    if csr is None:
        csr = CSRGraph(graph)
    if base is None:
        base = hybrid_partition(graph, interner, engine="dense", csr=csr)

    nodes = csr.nodes
    index = csr.index
    colors = csr.gather_colors(base.as_dict())
    weights = [0.0] * csr.num_nodes
    source_nodes = graph.source_nodes
    is_source = [node in source_nodes for node in nodes]
    is_literal = [graph.is_literal_node(node) for node in nodes]
    tracker = AlignmentTracker(colors, is_source)

    # Lines 2–4: the literal round (characterizer and distance read node
    # labels only, so they are shared with the reference engine).
    close_pairs = overlap_match(
        {nodes[i] for i in tracker.unaligned_source if is_literal[i]},
        {nodes[i] for i in tracker.unaligned_target if is_literal[i]},
        theta,
        literal_characterizer(graph, splitter),
        literal_distance(graph),
        probe=probe,
    )
    if trace is not None:
        trace.literal_matches = len(close_pairs)

    # Lines 5–12: enrich, propagate, rediscover on non-literals.
    blank = interner.blank_color()
    for generation in range(1, max_rounds + 1):
        # Enrich(ξ, H): fold the matched components into the buffers.
        if not close_pairs.is_empty:
            for component_index, component in enumerate(close_pairs.components()):
                color = interner.component_color(generation, component_index)
                for node in component:
                    dense = index[node]
                    colors[dense] = color
                    tracker.recolor(dense, color)
                for node, weight in component_weights(
                    close_pairs, component
                ).items():
                    weights[index[node]] = weight
        # Propagate: blank the unaligned non-literals, refine their
        # colors, Jacobi-iterate their weights.
        subset = sorted(
            dense
            for dense in tracker.unaligned_source | tracker.unaligned_target
            if not is_literal[dense]
        )
        for dense in subset:
            colors[dense] = blank
            weights[dense] = 0.0
        colors, _rounds, _converged, _classes = refine_colors(
            csr, colors, subset, interner
        )
        for dense in subset:
            tracker.recolor(dense, colors[dense])
        weight_stats = WeightFixpointStats()
        weights = dense_weight_fixpoint(
            csr, weights, subset, epsilon,
            operator=operator, stats=weight_stats,
        )
        if trace is not None:
            trace.weight_stats.append(weight_stats)
        # Rediscover close pairs among the remaining unaligned nodes.
        round_view = _NonLiteralRound(csr, colors, weights, operator)
        close_pairs = overlap_match(
            {nodes[i] for i in tracker.unaligned_source if not is_literal[i]},
            {nodes[i] for i in tracker.unaligned_target if not is_literal[i]},
            theta,
            round_view.characterize,
            round_view.distance,
            probe=probe,
        )
        if trace is not None:
            trace.rounds.append(len(close_pairs))
        if close_pairs.is_empty:
            break
    else:
        if trace is not None:
            trace.stopped_by_round_limit = True

    # Materialize the user-facing types once, preserving any off-graph
    # extras of the base partition (reference semantics).
    coloring = base.as_dict()
    coloring.update(zip(nodes, colors))
    weight_map = {node: 0.0 for node in coloring}
    weight_map.update(zip(nodes, weights))
    return WeightedPartition(Partition(coloring), weight_map)
