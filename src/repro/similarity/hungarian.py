"""The Hungarian algorithm for the assignment problem [9].

`σEdit` matches the outgoing edges of two nodes optimally; the paper uses
the Hungarian algorithm for that (Example 5).  This is a from-scratch
implementation of the O(n³) shortest-augmenting-path formulation (also
known as the Jonker–Volgenant variant of Kuhn–Munkres); the test suite
cross-checks it against ``scipy.optimize.linear_sum_assignment`` on random
instances and the micro benchmark compares their speed.

:func:`solve_assignment` handles rectangular matrices by operating on the
smaller dimension; :func:`matching_with_deletion` implements the
graph-edit-distance convention where leaving an element unmatched costs a
fixed penalty.
"""

from __future__ import annotations

from typing import Sequence

_INF = float("inf")


def solve_assignment(cost: Sequence[Sequence[float]]) -> tuple[list[int], float]:
    """Minimal-cost assignment of rows to columns.

    For an ``n × m`` matrix with ``n ≤ m`` every row is assigned a distinct
    column; for ``n > m`` every column is assigned (unassigned rows get
    ``-1``).  Returns ``(assignment, total)`` where ``assignment[i]`` is the
    column of row ``i`` or ``-1``.

    >>> solve_assignment([[1.0, 2.0], [2.0, 1.0]])
    ([0, 1], 2.0)
    """
    rows = len(cost)
    if rows == 0:
        return [], 0.0
    cols = len(cost[0])
    if any(len(row) != cols for row in cost):
        raise ValueError("cost matrix is ragged")
    if cols == 0:
        return [-1] * rows, 0.0
    if rows > cols:
        transposed = [[cost[i][j] for i in range(rows)] for j in range(cols)]
        col_assignment, total = solve_assignment(transposed)
        assignment = [-1] * rows
        for j, i in enumerate(col_assignment):
            assignment[i] = j
        return assignment, total
    return _solve_rows_leq_cols(cost, rows, cols)


def _solve_rows_leq_cols(
    cost: Sequence[Sequence[float]], rows: int, cols: int
) -> tuple[list[int], float]:
    """Shortest-augmenting-path Hungarian for ``rows ≤ cols``.

    1-indexed potentials over rows (``u``) and columns (``v``);
    ``assigned_row[j]`` is the row currently matched to column ``j``.
    """
    u = [0.0] * (rows + 1)
    v = [0.0] * (cols + 1)
    assigned_row = [0] * (cols + 1)  # 0 = free column
    predecessor = [0] * (cols + 1)

    # With nonnegative costs the potentials keep every reduced cost >= 0
    # (standard dual feasibility), so a *free* column at reduced cost 0 is
    # already a shortest augmenting path — assign it without the O(n·m)
    # path search.  `σEdit` matrices are full of zeros (same-class pairs
    # cost 0, the deletion embedding has a zero block), so this early exit
    # carries most rows.  Matrices with negative entries skip it: there
    # the zero-length-path argument does not hold.
    zero_exit = all(
        value >= 0.0 for cost_row in cost for value in cost_row
    )

    for row in range(1, rows + 1):
        if zero_exit:
            free_zero = -1
            row_costs = cost[row - 1]
            u_row = u[row]
            for col in range(1, cols + 1):
                if (
                    assigned_row[col] == 0
                    and row_costs[col - 1] - u_row - v[col] <= 0.0
                ):
                    free_zero = col
                    break
            if free_zero >= 0:
                assigned_row[free_zero] = row
                continue
        assigned_row[0] = row
        min_to_column = [_INF] * (cols + 1)
        visited = [False] * (cols + 1)
        current_col = 0
        while True:
            visited[current_col] = True
            current_row = assigned_row[current_col]
            delta = _INF
            next_col = -1
            for col in range(1, cols + 1):
                if visited[col]:
                    continue
                reduced = cost[current_row - 1][col - 1] - u[current_row] - v[col]
                if reduced < min_to_column[col]:
                    min_to_column[col] = reduced
                    predecessor[col] = current_col
                if min_to_column[col] < delta:
                    delta = min_to_column[col]
                    next_col = col
            for col in range(cols + 1):
                if visited[col]:
                    u[assigned_row[col]] += delta
                    v[col] -= delta
                else:
                    min_to_column[col] -= delta
            current_col = next_col
            if assigned_row[current_col] == 0:
                break
        # Augment along the found path.
        while current_col != 0:
            previous_col = predecessor[current_col]
            assigned_row[current_col] = assigned_row[previous_col]
            current_col = previous_col

    assignment = [-1] * rows
    total = 0.0
    for col in range(1, cols + 1):
        if assigned_row[col] != 0:
            assignment[assigned_row[col] - 1] = col - 1
            total += cost[assigned_row[col] - 1][col - 1]
    return assignment, total


def matching_with_deletion(
    cost: Sequence[Sequence[float]], deletion_cost: float = 1.0
) -> tuple[list[tuple[int, int]], float]:
    """Optimal matching where elements may stay unmatched at a fixed cost.

    Given an ``n × m`` cost matrix between two edge sets, find the matching
    minimizing ``Σ matched costs + deletion_cost · #unmatched`` — the
    graph-edit-distance convention `σEdit` uses for outbound neighborhoods.
    Returns the matched index pairs and the *total* (matched + deletions).

    Implemented by the standard square embedding of size ``n + m``: the
    top-right and bottom-left blocks are diagonal deletion costs, the
    bottom-right block is zero.
    """
    n = len(cost)
    m = len(cost[0]) if n else 0
    if n == 0 and m == 0:
        return [], 0.0
    size = n + m
    square = [[0.0] * size for _ in range(size)]
    for i in range(n):
        for j in range(m):
            square[i][j] = cost[i][j]
        for j in range(m, size):
            square[i][j] = deletion_cost if j - m == i else _INF
    for i in range(n, size):
        for j in range(m):
            square[i][j] = deletion_cost if i - n == j else _INF
        # bottom-right block stays 0.0
    assignment, total = solve_assignment(square)
    pairs = [
        (i, assignment[i]) for i in range(n) if 0 <= assignment[i] < m
    ]
    return pairs, total
