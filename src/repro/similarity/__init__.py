"""Similarity alignment: σEdit, weighted partitions, enrichment, overlap."""

from .edit_distance import EditDistance
from .enrichment import (
    WeightedBipartiteGraph,
    component_weights,
    enrich,
    shortest_distances,
)
from .hungarian import matching_with_deletion, solve_assignment
from .oplus import (
    OPERATORS,
    OplusOperator,
    oplus,
    oplus_max,
    oplus_probabilistic,
    oplus_sum,
)
from .overlap import (
    overlap_coefficient,
    overlap_match,
    probe_budget,
    set_difference_distance,
)
from .overlap_alignment import (
    OverlapTrace,
    literal_characterizer,
    literal_distance,
    non_literal_distance,
    out_color_characterizer,
    overlap_partition,
)
from .dense_overlap import AlignmentTracker, dense_overlap_partition
from .predicate_alignment import (
    mediation_index,
    predicate_aware_overlap,
    predicate_profile,
    predominantly_predicates,
    refine_predicates,
)
from .string_distance import (
    bounded_normalized_levenshtein,
    levenshtein,
    levenshtein_banded,
    normalized_levenshtein,
    split_words,
)
from .weighted_refine import (
    DEFAULT_EPSILON,
    propagate,
    reweight,
    weighted_refine_fixpoint,
)

__all__ = [
    "AlignmentTracker",
    "DEFAULT_EPSILON",
    "EditDistance",
    "dense_overlap_partition",
    "mediation_index",
    "predicate_aware_overlap",
    "predicate_profile",
    "predominantly_predicates",
    "refine_predicates",
    "OPERATORS",
    "OplusOperator",
    "OverlapTrace",
    "WeightedBipartiteGraph",
    "bounded_normalized_levenshtein",
    "component_weights",
    "enrich",
    "levenshtein",
    "levenshtein_banded",
    "literal_characterizer",
    "literal_distance",
    "matching_with_deletion",
    "non_literal_distance",
    "normalized_levenshtein",
    "oplus",
    "oplus_max",
    "oplus_probabilistic",
    "oplus_sum",
    "out_color_characterizer",
    "overlap_coefficient",
    "overlap_match",
    "overlap_partition",
    "probe_budget",
    "propagate",
    "reweight",
    "set_difference_distance",
    "shortest_distances",
    "solve_assignment",
    "split_words",
    "weighted_refine_fixpoint",
]
