"""The overlap heuristic — Algorithm 1 of the paper (Section 4.6).

Candidate pairs of close nodes are found without any pairwise scan:

1. every node is *characterized* by a set of objects (words of a literal,
   colored out-edges of a non-literal) such that close nodes share many
   objects;
2. an inverted index over the target side maps objects to the nodes they
   characterize;
3. for each source node, its characterizing objects are probed in order of
   ascending frequency — rare objects discriminate best — and only a
   θ-dependent prefix of them is inspected;
4. candidates that clear the set-overlap threshold are verified with the
   actual distance function.

The paper probes the ``⌈k·θ⌉`` least frequent objects.  The classical
prefix-filtering bound that can never miss a candidate with overlap ≥ θ is
``k − ⌈k·θ⌉ + 1`` probes; for θ ≥ 0.5 the paper's count is at least that
bound (so it is safe *and* does extra work), for θ < 0.5 it may miss
candidates.  Both rules are available via *probe*; the ablation bench
``bench_micro_overlap`` compares them.
"""

from __future__ import annotations

import math
from typing import Callable, Collection, Hashable, Literal as TypingLiteral

from ..model.graph import NodeId
from .enrichment import WeightedBipartiteGraph

#: A node-characterizing function ``char : A ∪ B → P(O)``.
Characterizer = Callable[[NodeId], frozenset[Hashable]]

#: A distance function on candidate pairs.
DistanceFunction = Callable[[NodeId, NodeId], float]

ProbeRule = TypingLiteral["paper", "safe"]


def overlap_coefficient(first: frozenset, second: frozenset) -> float:
    """``overlap(O1, O2) = |O1 ∩ O2| / |O1 ∪ O2|`` with ``overlap(∅, ∅) = 1``."""
    if not first and not second:
        return 1.0
    return len(first & second) / len(first | second)


def set_difference_distance(first: frozenset, second: frozenset) -> float:
    """``diff(O1, O2) = |O1 ÷ O2| / |O1 ∪ O2| = 1 − overlap`` with ``diff(∅, ∅) = 0``."""
    return 1.0 - overlap_coefficient(first, second)


def probe_budget(size: int, theta: float, rule: ProbeRule) -> int:
    """How many characterizing objects to inspect for a node with *size* objects."""
    if size == 0:
        return 0
    if rule == "paper":
        return min(size, math.ceil(size * theta))
    if rule == "safe":
        return min(size, size - math.ceil(size * theta) + 1)
    raise ValueError(f"unknown probe rule {rule!r}")


#: Types whose ``<`` is a total order (and whose flat tuples therefore
#: sort totally too).  Anything else — notably frozensets, where ``<`` is
#: subset inclusion and ``sorted`` silently yields an arbitrary order —
#: falls back to the ``repr`` tie-break.
_TOTALLY_ORDERED = (int, float, str, bytes)


def _frequency_ranks(
    objects: set, frequency: dict[Hashable, int]
) -> dict[Hashable, int]:
    """Position of every object in the ascending-frequency probe order.

    Ties among equal-frequency objects are broken by the objects' natural
    order when that order is total (literal words, packed out-color
    codes, color-pair tuples), falling back to ``repr`` otherwise.
    Either way the key is computed once per *distinct* object per call —
    the former ``(frequency, repr(obj))`` sort key re-stringified every
    object once per source node, which dominated the candidate-search
    profile.
    """
    naturally_ordered = all(
        isinstance(obj, _TOTALLY_ORDERED)
        or (
            isinstance(obj, tuple)
            and all(isinstance(item, _TOTALLY_ORDERED) for item in obj)
        )
        for obj in objects
    )
    if naturally_ordered:
        try:
            ordered = sorted(objects)
        except TypeError:  # mixed types, e.g. ints next to strings
            ordered = sorted(objects, key=repr)
    else:
        ordered = sorted(objects, key=repr)
    ordered.sort(key=lambda obj: frequency.get(obj, 0))  # stable: keeps ties
    return {obj: position for position, obj in enumerate(ordered)}


def overlap_match(
    source_nodes: Collection[NodeId],
    target_nodes: Collection[NodeId],
    theta: float,
    characterize: Characterizer,
    distance: DistanceFunction,
    probe: ProbeRule = "paper",
) -> WeightedBipartiteGraph:
    """``OverlapMatch(A, B, θ, char, σ)`` — Algorithm 1.

    Returns the weighted bipartite graph of pairs with characterizing-set
    overlap ≥ θ *and* distance < θ, weighted by that distance.  Both sides
    are characterized exactly once per call, so an expensive *characterize*
    is never re-entered for the same node.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {theta}")

    # Lines 1–6: inverted index and frequency counts over the target side.
    target_characterizations: dict[NodeId, frozenset[Hashable]] = {
        node: characterize(node) for node in target_nodes
    }
    inverted: dict[Hashable, list[NodeId]] = {}
    for node, objects in target_characterizations.items():
        for obj in objects:
            inverted.setdefault(obj, []).append(node)
    frequency: dict[Hashable, int] = {obj: len(nodes) for obj, nodes in inverted.items()}

    # Characterize the source side once, then rank every distinct source
    # object so the per-node probe order is a cheap integer sort.
    source_characterizations: dict[NodeId, frozenset[Hashable]] = {
        node: characterize(node) for node in source_nodes
    }
    distinct: set[Hashable] = set()
    for objects in source_characterizations.values():
        distinct.update(objects)
    rank = _frequency_ranks(distinct, frequency)

    # Lines 7–19: probe, filter by overlap, verify by distance.
    matches: dict[tuple[NodeId, NodeId], float] = {}
    for source, objects in source_characterizations.items():
        if not objects:
            continue
        ordered = sorted(objects, key=rank.__getitem__)
        budget = probe_budget(len(ordered), theta, probe)
        candidates: set[NodeId] = set()
        rejected: set[NodeId] = set()
        for obj in ordered[:budget]:
            for target in inverted.get(obj, ()):
                if target in candidates or target in rejected:
                    continue
                if overlap_coefficient(objects, target_characterizations[target]) >= theta:
                    candidates.add(target)
                else:
                    rejected.add(target)
        for target in candidates:
            value = distance(source, target)
            if value < theta:
                matches[(source, target)] = value
    return WeightedBipartiteGraph(matches)
