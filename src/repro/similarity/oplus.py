"""Re-export of the ``⊕`` operators.

The implementation lives in :mod:`repro.oplus` (a dependency-free module)
so that :mod:`repro.partition.weighted` can use ``⊕`` without importing the
whole similarity package; this alias keeps the paper-facing location —
``⊕`` is introduced in the similarity section (4.1) — importable.
"""

from ..oplus import (
    OPERATORS,
    OplusOperator,
    oplus,
    oplus_max,
    oplus_probabilistic,
    oplus_sum,
)

__all__ = [
    "OPERATORS",
    "OplusOperator",
    "oplus",
    "oplus_max",
    "oplus_probabilistic",
    "oplus_sum",
]
