"""Weighted bisimulation refinement and propagation (paper Section 4.5).

After enrichment folds newly discovered close pairs into the weighted
partition, ``Propagate`` spreads that information to the remaining
unaligned nodes: their colors are blanked and refined exactly as in the
hybrid alignment, and their weights are recomputed as the normalized
``⊕``-average of the weights of their outbound pairs:

    reweight_ω(n) = ⊕ { (ω(p) ⊕ ω(o)) / |out_G(n)| | (p, o) ∈ out_G(n) }

(sinks keep their weight).  The refinement iterates until the partition is
a fixpoint and no weight moves by more than ``ε``.

Implementation note: the weight recurrence reads only the graph structure
and neighbor weights — never the colors — so the fixpoint factors into two
phases: (1) refine the colors with the standard batch fixpoint, (2) iterate
the weights from 0.  Weights of blanked nodes start at 0 and the recurrence
is monotone in every argument, so phase 2 converges from below to the least
fixpoint; this matches the paper's observation that weights "will all be 0,
and will only increase during the refinement process".

Diagnostics: pass a :class:`~repro.core.refinement.WeightFixpointStats`
to receive sweep counts and the final delta; a ``max_rounds`` truncation
before stabilization is logged as a warning instead of silently returning
a non-fixpoint iterate (same contract as the color fixpoint's
``FixpointStats``).  Algorithm 2 surfaces these per-generation stats via
``OverlapTrace.weight_stats``.
"""

from __future__ import annotations

from typing import Collection

from ..core.refinement import WeightFixpointStats, _warn_weight_truncated
from ..model.graph import NodeId, TripleGraph
from ..model.union import CombinedGraph
from ..partition.alignment import unaligned_non_literals
from ..partition.interner import ColorInterner
from ..partition.weighted import WeightedPartition
from .oplus import OplusOperator, oplus, oplus_sum

#: Weight-stabilization tolerance (paper: "some fixed small value ε > 0").
DEFAULT_EPSILON = 1e-9


def reweight(
    graph: TripleGraph,
    weights: dict[NodeId, float],
    node: NodeId,
    operator: OplusOperator = oplus,
) -> float:
    """``reweight_ω(node)``: the normalized ⊕-average over outbound pairs."""
    out_pairs = graph.out(node)
    if not out_pairs:
        return weights[node]
    size = len(out_pairs)
    return oplus_sum(
        (operator(weights[predicate], weights[obj]) / size
         for predicate, obj in out_pairs),
        operator,
    )


def weighted_refine_fixpoint(
    graph: TripleGraph,
    weighted: WeightedPartition,
    subset: Collection[NodeId],
    interner: ColorInterner,
    epsilon: float = DEFAULT_EPSILON,
    max_rounds: int = 10_000,
    operator: OplusOperator = oplus,
    stats: WeightFixpointStats | None = None,
) -> WeightedPartition:
    """``BisimRefine*_X(ξ)`` for weighted partitions.

    Colors follow the standard batch refinement; weights of subset nodes
    are Jacobi-iterated to stabilization.  An empty *subset* skips the
    iteration entirely.  When *max_rounds* cuts the sweeps off while some
    weight still moves by ``ε`` or more, a warning is logged and
    ``stats.converged`` (pass a :class:`WeightFixpointStats`) is
    ``False``.
    """
    from ..core.refinement import bisim_refine_fixpoint

    if stats is None:
        stats = WeightFixpointStats()
    stats.engine = "reference"
    subset_nodes = list(subset)
    stats.subset_size = len(subset_nodes)
    partition = bisim_refine_fixpoint(graph, weighted.partition, subset_nodes, interner)
    weights = dict(weighted.weights())
    if not subset_nodes:
        stats.rounds = 0
        stats.converged = True
        stats.final_delta = 0.0
        return WeightedPartition(partition, weights)
    rounds = 0
    delta = 0.0
    converged = False
    while rounds < max_rounds:
        delta = 0.0
        updates: dict[NodeId, float] = {}
        for node in subset_nodes:
            new_weight = reweight(graph, weights, node, operator)
            updates[node] = new_weight
            change = abs(new_weight - weights[node])
            if change > delta:
                delta = change
        weights.update(updates)
        rounds += 1
        if delta < epsilon:
            converged = True
            break
    stats.rounds = rounds
    stats.final_delta = delta
    stats.converged = converged
    if not converged:
        _warn_weight_truncated(stats, max_rounds)
    return WeightedPartition(partition, weights)


def propagate(
    graph: CombinedGraph,
    weighted: WeightedPartition,
    interner: ColorInterner,
    epsilon: float = DEFAULT_EPSILON,
    max_rounds: int = 10_000,
    operator: OplusOperator = oplus,
    stats: WeightFixpointStats | None = None,
) -> WeightedPartition:
    """``Propagate(ξ) = BisimRefine*_{UN(ξ)}(Blank(ξ, UN(ξ)))``.

    Blanks every unaligned non-literal node (color ⊥, weight 0) and refines
    them, letting previously aligned neighbors define both the identity and
    the confidence of the blanked nodes.
    """
    unaligned = unaligned_non_literals(graph, weighted.partition)
    blanked = weighted.blank_out(unaligned, interner)
    return weighted_refine_fixpoint(
        graph,
        blanked,
        unaligned,
        interner,
        epsilon=epsilon,
        max_rounds=max_rounds,
        operator=operator,
        stats=stats,
    )
