"""Predicate-aware alignment — the paper's Section 5.1 proposal.

The outbound methods misalign URIs used *only* as predicates: such nodes
have no contents, so the hybrid blanking lumps them into one cluster.  The
paper: "A better solution would identify URIs that are predominantly used
as predicates and use a different refinement process, for instance, one
that incorporates the colors of the subject and the object in any triple
that uses the given predicate."

This module implements that process on top of the overlap machinery:

* :func:`predicate_profile` characterizes a predicate by the set of
  (subject color, object color) pairs of the triples it mediates;
* :func:`refine_predicates` matches unaligned predicates across versions
  with the overlap heuristic (set-difference distance on profiles) and
  enriches the weighted partition with the matched components.

Because profiles are *sets of colors of already-aligned rows*, persistent
rows anchor the match even when every predicate URI was renamed (the
direct-mapping scenario of the GtoPdb experiments).
"""

from __future__ import annotations

from typing import Hashable

from ..model.graph import NodeId
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.interner import Color, ColorInterner
from ..partition.weighted import WeightedPartition
from .enrichment import enrich
from .overlap import ProbeRule, overlap_match, set_difference_distance


def mediation_index(graph: CombinedGraph) -> dict[NodeId, set[tuple[NodeId, NodeId]]]:
    """For every node, the (subject, object) pairs it mediates as predicate."""
    index: dict[NodeId, set[tuple[NodeId, NodeId]]] = {}
    for subject, predicate, obj in graph.edges():
        index.setdefault(predicate, set()).add((subject, obj))
    return index


def predicate_usage_counts(graph: CombinedGraph) -> dict[NodeId, tuple[int, int]]:
    """``(as_predicate, as_subject_or_object)`` occurrence counts per node."""
    counts: dict[NodeId, tuple[int, int]] = {}
    for subject, predicate, obj in graph.edges():
        for node, is_predicate in ((subject, False), (predicate, True), (obj, False)):
            as_predicate, as_other = counts.get(node, (0, 0))
            if is_predicate:
                counts[node] = (as_predicate + 1, as_other)
            else:
                counts[node] = (as_predicate, as_other + 1)
    return counts


def predominantly_predicates(graph: CombinedGraph) -> set[NodeId]:
    """URIs used more often as predicate than as subject/object."""
    return {
        node
        for node, (as_predicate, as_other) in predicate_usage_counts(graph).items()
        if as_predicate > as_other and graph.is_uri_node(node)
    }


def predicate_profile(
    graph: CombinedGraph,
    weighted: WeightedPartition,
    index: dict[NodeId, set[tuple[NodeId, NodeId]]],
):
    """Characterizer: the (subject color, object color) pairs a node mediates."""
    partition = weighted.partition

    def characterize(node: NodeId) -> frozenset[Hashable]:
        return frozenset(
            (partition[subject], partition[obj])
            for subject, obj in index.get(node, ())
        )

    return characterize


def refine_predicates(
    graph: CombinedGraph,
    weighted: WeightedPartition,
    interner: ColorInterner,
    theta: float = 0.65,
    probe: ProbeRule = "safe",
    generation: int = 1_000,
) -> WeightedPartition:
    """Match unaligned predominantly-predicate URIs by their profiles.

    Returns the weighted partition enriched with the matched components;
    nodes that found no counterpart keep their previous cluster.  Use
    *generation* to keep component colors distinct from Algorithm 2's own
    enrichment rounds when composing both.
    """
    alignment = PartitionAlignment(graph, weighted.partition)
    predicates = predominantly_predicates(graph)
    # Candidates are predicates whose current alignment is *ambiguous*: the
    # hybrid blanking lumps content-free predicate URIs into one fat sink
    # cluster, so they are typically (badly) aligned to many nodes rather
    # than unaligned.  A predicate aligned 1-to-1 is left untouched.
    source_candidates = {
        node
        for node in predicates & graph.source_nodes
        if len(alignment.partners(node)) != 1
    }
    target_candidates = {
        node
        for node in predicates & graph.target_nodes
        if len(alignment.partners(node)) != 1
    }
    if not source_candidates or not target_candidates:
        return weighted
    index = mediation_index(graph)
    characterize = predicate_profile(graph, weighted, index)

    def distance(source: NodeId, target: NodeId) -> float:
        return set_difference_distance(characterize(source), characterize(target))

    matches = overlap_match(
        source_candidates,
        target_candidates,
        theta,
        characterize,
        distance,
        probe=probe,
    )
    return enrich(weighted, matches, interner, generation=generation)


def predicate_aware_overlap(
    graph: CombinedGraph,
    theta: float = 0.65,
    interner: ColorInterner | None = None,
    probe: ProbeRule = "safe",
    **overlap_kwargs,
) -> WeightedPartition:
    """The overlap alignment followed by the predicate refinement pass."""
    from .overlap_alignment import overlap_partition

    if interner is None:
        interner = ColorInterner()
    weighted = overlap_partition(
        graph, theta=theta, interner=interner, **overlap_kwargs
    )
    return refine_predicates(graph, weighted, interner, theta=theta, probe=probe)
