"""The overlap alignment — Algorithm 2 of the paper (Section 4.7).

Starting from the hybrid partition with zero weights, the overlap
alignment repeatedly

1. finds close pairs with the overlap heuristic — first among unaligned
   *literals* (characterized by their word sets, verified with normalized
   string edit distance), then among unaligned *non-literals*
   (characterized by the colors of their outgoing edges, verified with
   `σNL`),
2. enriches the weighted partition with the matched components, and
3. propagates the new alignment information to the remaining unaligned
   nodes,

until the heuristic finds nothing new.  The resulting weighted partition
``ξ_Overlap`` approximates `σEdit` (Theorem 1): pairs it clusters together
satisfy ``σEdit(n, m) ≤ ω(n) ⊕ ω(m)``.

`σNL` avoids the Hungarian algorithm: outgoing edges can only be matched
when they carry identical color pairs, so the optimal coupling simply zips
the same-color edge groups of the two nodes in order of ascending weight;
every edge left uncoupled contributes the deletion cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..core.refinement import WeightFixpointStats
from ..exceptions import ExperimentError
from ..model.graph import NodeId
from ..model.labels import Literal
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner
from ..partition.weighted import WeightedPartition, zero_weighted
from .enrichment import WeightedBipartiteGraph, enrich
from .oplus import OplusOperator, oplus, oplus_sum
from .overlap import ProbeRule, overlap_match
from .string_distance import normalized_levenshtein, split_words
from .weighted_refine import DEFAULT_EPSILON, propagate


#: Splits a literal value into its characterizing object set.
LiteralSplitter = Callable[[str], frozenset]


def literal_characterizer(
    graph: CombinedGraph, splitter: LiteralSplitter = split_words
):
    """Algorithm 2's ``split``: a literal node's characterizing set.

    *splitter* defaults to the paper's word split; data whose literals are
    single tokens should use
    :func:`repro.similarity.string_distance.character_set` or
    :func:`~repro.similarity.string_distance.qgrams` instead (word sets of
    edited single tokens are disjoint, so the overlap filter would reject
    every candidate).
    """

    def characterize(node: NodeId) -> frozenset[Hashable]:
        label = graph.label(node)
        assert isinstance(label, Literal), f"{node!r} is not a literal node"
        return splitter(label.value)

    return characterize


def literal_distance(graph: CombinedGraph):
    """``σ_Literals``: normalized string edit distance on literal labels."""

    def distance(source: NodeId, target: NodeId) -> float:
        first = graph.label(source)
        second = graph.label(target)
        assert isinstance(first, Literal) and isinstance(second, Literal)
        return normalized_levenshtein(first.value, second.value)

    return distance


def out_color_characterizer(graph: CombinedGraph, weighted: WeightedPartition):
    """``out-color_ξ(n) = {(λ(p), λ(o)) | (p, o) ∈ out_G(n)}``."""
    partition = weighted.partition

    def characterize(node: NodeId) -> frozenset[Hashable]:
        return frozenset(
            (partition[predicate], partition[obj])
            for predicate, obj in graph.out(node)
        )

    return characterize


def non_literal_distance(
    graph: CombinedGraph,
    weighted: WeightedPartition,
    operator: OplusOperator = oplus,
):
    """``σ^NL_ξ``: matching cost over same-color outgoing-edge groups.

    For each color pair shared by both nodes, the edges are coupled in
    order of ascending weight ``ω(p) ⊕ ω(o)``; a coupled pair contributes
    ``(σ_ξ(p1, p2) ⊕ σ_ξ(o1, o2)) / f`` — which, the colors being equal,
    is ``(w1 ⊕ w2) / f`` — and the ``R`` uncoupled edges contribute
    ``R / f``, with ``f`` the larger outbound size.

    The per-node weight groups are memoized on the returned closure: a
    node appearing in many candidate pairs of one ``OverlapMatch`` round
    walks its out-edges once (build a fresh closure per round — the cache
    is only valid for one weighted partition).
    """
    partition = weighted.partition
    cache: dict[NodeId, dict[tuple[Color, Color], list[float]]] = {}

    def grouped_weights(node: NodeId) -> dict[tuple[Color, Color], list[float]]:
        groups = cache.get(node)
        if groups is not None:
            return groups
        groups = {}
        for predicate, obj in graph.out(node):
            key = (partition[predicate], partition[obj])
            groups.setdefault(key, []).append(
                operator(weighted.weight(predicate), weighted.weight(obj))
            )
        for weights in groups.values():
            weights.sort()
        cache[node] = groups
        return groups

    def distance(source: NodeId, target: NodeId) -> float:
        source_groups = grouped_weights(source)
        target_groups = grouped_weights(target)
        normalizer = max(graph.out_degree(source), graph.out_degree(target))
        if normalizer == 0:
            return 0.0
        contributions: list[float] = []
        uncoupled = 0
        # Sorted so the float-accumulation order (and thus the bits of
        # the oplus sum) is independent of the hash seed.
        for key in sorted(source_groups.keys() | target_groups.keys()):
            first = source_groups.get(key, [])
            second = target_groups.get(key, [])
            coupled = min(len(first), len(second))
            for i in range(coupled):
                contributions.append(operator(first[i], second[i]) / normalizer)
            uncoupled += len(first) + len(second) - 2 * coupled
        total = oplus_sum(contributions, operator)
        return operator(total, uncoupled / normalizer)

    return distance


@dataclass
class OverlapTrace:
    """Diagnostics of one Algorithm 2 run (round sizes, stop reason).

    ``weight_stats`` holds one
    :class:`~repro.core.refinement.WeightFixpointStats` per generation —
    the Jacobi weight iteration of that generation's ``Propagate`` —
    filled by whichever engine ran the alignment, so a
    ``max_rounds``-truncated weight iteration is visible here instead of
    silently returning drifting weights.
    """

    literal_matches: int = 0
    rounds: list[int] = field(default_factory=list)
    stopped_by_round_limit: bool = False
    weight_stats: list[WeightFixpointStats] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    @property
    def weight_truncations(self) -> int:
        """Generations whose weight iteration hit its round limit."""
        return sum(1 for stats in self.weight_stats if not stats.converged)


def overlap_partition(
    graph: CombinedGraph,
    theta: float = 0.65,
    interner: ColorInterner | None = None,
    base: Partition | None = None,
    probe: ProbeRule = "paper",
    epsilon: float = DEFAULT_EPSILON,
    max_rounds: int = 100,
    operator: OplusOperator = oplus,
    trace: OverlapTrace | None = None,
    splitter: LiteralSplitter = split_words,
    engine: str = "reference",
    csr=None,
) -> WeightedPartition:
    """``Overlap(G, θ)`` — Algorithm 2.

    *base* may supply a precomputed hybrid partition (sharing *interner*,
    and built with the same *engine* so colors live in one key space).
    *trace*, when given, is filled with per-round diagnostics.
    *splitter* chooses the literal characterizer (see
    :func:`literal_characterizer`).  *engine* selects the loop
    implementation: ``"reference"`` (this function's dict-based loop) or
    ``"dense"`` (flat CSR buffers, see
    :mod:`repro.similarity.dense_overlap`); *csr* may hand the dense
    engine a prebuilt snapshot of *graph*.
    """
    from ..core.dense import resolve_refine_engine
    from ..core.hybrid import hybrid_partition  # late import to avoid a cycle

    resolve_refine_engine(engine)  # fail fast on typos
    if engine == "dense":
        from .dense_overlap import dense_overlap_partition

        return dense_overlap_partition(
            graph,
            theta=theta,
            interner=interner,
            base=base,
            probe=probe,
            epsilon=epsilon,
            max_rounds=max_rounds,
            operator=operator,
            trace=trace,
            splitter=splitter,
            csr=csr,
        )
    if csr is not None:
        raise ExperimentError(
            "a CSR snapshot only applies to the dense engine"
        )
    if interner is None:
        interner = ColorInterner()
    if base is None:
        base = hybrid_partition(graph, interner)
    weighted = zero_weighted(base)

    # Lines 2–4: the literal round.
    alignment = PartitionAlignment(graph, weighted.partition)
    unaligned_source_literals = {
        n for n in alignment.unaligned_source() if graph.is_literal_node(n)
    }
    unaligned_target_literals = {
        m for m in alignment.unaligned_target() if graph.is_literal_node(m)
    }
    close_pairs = overlap_match(
        unaligned_source_literals,
        unaligned_target_literals,
        theta,
        literal_characterizer(graph, splitter),
        literal_distance(graph),
        probe=probe,
    )
    if trace is not None:
        trace.literal_matches = len(close_pairs)

    # Lines 5–12: enrich, propagate, rediscover on non-literals.
    for generation in range(1, max_rounds + 1):
        weight_stats = WeightFixpointStats()
        weighted = propagate(
            graph,
            enrich(weighted, close_pairs, interner, generation),
            interner,
            epsilon=epsilon,
            operator=operator,
            stats=weight_stats,
        )
        if trace is not None:
            trace.weight_stats.append(weight_stats)
        alignment = PartitionAlignment(graph, weighted.partition)
        unaligned_source = {
            n for n in alignment.unaligned_source() if not graph.is_literal_node(n)
        }
        unaligned_target = {
            m for m in alignment.unaligned_target() if not graph.is_literal_node(m)
        }
        close_pairs = overlap_match(
            unaligned_source,
            unaligned_target,
            theta,
            out_color_characterizer(graph, weighted),
            non_literal_distance(graph, weighted, operator),
            probe=probe,
        )
        if trace is not None:
            trace.rounds.append(len(close_pairs))
        if close_pairs.is_empty:
            return weighted
    if trace is not None:
        trace.stopped_by_round_limit = True
    return weighted
