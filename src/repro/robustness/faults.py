"""Deterministic, seeded fault injection for the execution layer.

The recovery machinery of this repo — bounded retry-with-backoff around
the shared-memory pool (:mod:`repro.experiments.parallel`), checksum
verification and quarantine-and-rebuild in the persistence layer
(:mod:`repro.experiments.persist` / :meth:`VersionStore.load`) — is only
trustworthy if its failure paths are *exercised*, reproducibly, against
the same byte-identity oracle that pins the happy path.  This module is
the injection half of that contract:

* :class:`FaultSpec` — one fault: a *site* (a named hook point such as
  ``"worker.cell"`` or ``"backend.read"``), a *kind* (``sigkill`` /
  ``hang`` / ``oserror`` / ``bitflip`` / ``truncate``) and a matching
  window (item index, backend key substring, nth occurrence, how many
  occurrences, which pool attempts).
* :class:`FaultPlan` — an immutable, picklable bundle of specs.  Plans
  cross the process boundary in the pool's ``initargs``, so worker-side
  faults (SIGKILL at cell N, per-cell hangs) fire inside real workers
  under fork *and* spawn.
* :class:`FaultClock` — the per-process occurrence counters.  Every
  process (parent or worker) counts its own events; determinism comes
  from the specs' windows being expressed in event coordinates (site,
  index, key, nth, attempt), never in wall-clock time.

Hook points are two functions with a **zero-cost disabled path**: call
sites guard on the module-level :data:`ACTIVE` tuple being ``None``
(one attribute load + ``is None`` per event), so production runs pay
nothing measurable — the ``robustness/retry_overhead`` bench gates the
clean-path cost of the whole harness at ≤ 5 %.

Sites currently wired in:

``worker.cell``
    Fired by the pool worker entry (:func:`repro.experiments.parallel.
    _pool_invoke`) with ``index`` = the cell's *original* item index and
    ``attempt`` = the pool's retry attempt.  Kinds: ``sigkill``
    (``os.kill(getpid(), SIGKILL)`` — no Python cleanup runs), ``hang``
    (sleep ``seconds``), ``oserror``.
``cell.serial``
    Fired by the serial in-process cell loop (and the autotune probe)
    of :func:`~repro.experiments.parallel.run_store_cells`.
``pool.start``
    Fired by :class:`~repro.experiments.parallel.SharedStorePool` before
    publishing segments, with ``attempt``.  Kind ``oserror`` makes pool
    construction itself a retryable failure.
``backend.read``
    Fired by :meth:`DiskBackend._read_file` with ``key`` = the logical
    store key.  ``oserror`` raises a transient ``EIO``;
    ``bitflip``/``truncate`` corrupt the returned bytes via
    :func:`filter_bytes` (the checksum layer must catch them).
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


#: Fault kinds that act at a :func:`fire` point.
ACTION_KINDS = ("sigkill", "hang", "oserror")

#: Fault kinds that corrupt payload bytes at a :func:`filter_bytes` point.
PAYLOAD_KINDS = ("bitflip", "truncate")

KINDS = ACTION_KINDS + PAYLOAD_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault with a deterministic matching window.

    Parameters
    ----------
    site:
        The hook point this fault arms (see the module docstring).
    kind:
        One of :data:`KINDS`.
    index:
        Only fire for this item/cell index (``None`` = any index).
    key:
        Only fire for backend keys containing this substring
        (``None`` = any key).
    nth:
        Skip the first *nth* matching events at the site (per process).
    times:
        Affect this many matching events after *nth* (``None`` =
        every one — a *persistent* fault, e.g. durable corruption).
    attempts:
        Pool attempt numbers the fault is live in (``None`` = all).
        The default ``(0,)`` makes worker faults one-shot across
        retries: the re-run after recovery proceeds cleanly.
    seconds:
        Sleep duration of the ``hang`` kind.
    seed:
        Seeds the ``bitflip`` byte position (deterministic per payload
        length).
    """

    site: str
    kind: str
    index: int | None = None
    key: str | None = None
    nth: int = 0
    times: int | None = 1
    attempts: tuple[int, ...] | None = (0,)
    seconds: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")

    def matches(self, site: str, index: int | None, key: str | None,
                attempt: int | None) -> bool:
        """Does an event at *site* fall inside this spec's filters?

        The occurrence window (``nth``/``times``) is applied by the
        clock, not here — matching and counting are separate so the
        counters only advance on events the spec actually selects.
        """
        if self.site != site:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.key is not None and (key is None or self.key not in key):
            return False
        if self.attempts is not None and attempt is not None \
                and attempt not in self.attempts:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable bundle of :class:`FaultSpec` faults.

    Plans carry no mutable state — occurrence counting lives in a
    per-process :class:`FaultClock` — so the same plan object can be
    shipped to every pool worker and re-armed across retry attempts
    without cross-process coordination.
    """

    specs: tuple[FaultSpec, ...] = ()
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def clock(self) -> "FaultClock":
        return FaultClock(counts=[0] * len(self.specs))


@dataclass
class FaultClock:
    """Per-process occurrence counters, one per spec of the active plan."""

    counts: list[int] = field(default_factory=list)

    def admit(self, slot: int, spec: FaultSpec) -> bool:
        """Count one matching event for *spec*; is it inside the window?"""
        n = self.counts[slot]
        self.counts[slot] = n + 1
        if n < spec.nth:
            return False
        if spec.times is not None and n >= spec.nth + spec.times:
            return False
        return True


#: The installed ``(plan, clock)`` pair, or ``None`` (the fast path).
#: Call sites guard on this directly — ``faults.ACTIVE is not None`` —
#: so disabled runs pay one attribute load per hook point.
ACTIVE: tuple[FaultPlan, FaultClock] | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan (``None`` when injection is disabled)."""
    return ACTIVE[0] if ACTIVE is not None else None


def install(plan: FaultPlan | None) -> None:
    """Install *plan* process-globally (``None`` disables injection).

    Used by the pool worker initializer; in-process callers should
    prefer the :func:`inject` context manager, which restores the
    previous plan on exit.
    """
    global ACTIVE
    ACTIVE = None if plan is None else (plan, plan.clock())


@contextmanager
def inject(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Context manager: arm *plan* for the block, restore the previous
    plan (and its clock) afterwards — exceptions included."""
    global ACTIVE
    previous = ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        ACTIVE = previous


def _perform(spec: FaultSpec) -> None:
    if spec.kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "hang":
        time.sleep(spec.seconds)
    elif spec.kind == "oserror":
        raise OSError(errno.EIO, f"injected transient I/O error ({spec.site})")


def fire(site: str, *, index: int | None = None, key: str | None = None,
         attempt: int | None = None) -> None:
    """One event at *site*: perform every armed action fault that admits it.

    A no-op when no plan is installed; payload kinds never act here
    (they only transform bytes in :func:`filter_bytes`).
    """
    if ACTIVE is None:
        return
    plan, clock = ACTIVE
    for slot, spec in enumerate(plan.specs):
        if spec.kind not in ACTION_KINDS:
            continue
        if spec.matches(site, index, key, attempt) and clock.admit(slot, spec):
            _perform(spec)


def filter_bytes(site: str, key: str | None, payload: bytes) -> bytes:
    """Pass *payload* through every armed payload fault at *site*.

    ``bitflip`` XORs one deterministically chosen byte (position seeded
    by ``spec.seed`` and the payload length); ``truncate`` drops the
    second half.  Both leave empty payloads alone.
    """
    if ACTIVE is None:
        return payload
    plan, clock = ACTIVE
    for slot, spec in enumerate(plan.specs):
        if spec.kind not in PAYLOAD_KINDS:
            continue
        if not spec.matches(site, None, key, None) or not clock.admit(slot, spec):
            continue
        if not payload:
            continue
        if spec.kind == "bitflip":
            position = (spec.seed * 2654435761 + len(payload)) % len(payload)
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            payload = bytes(corrupted)
        else:  # truncate
            payload = payload[: len(payload) // 2]
    return payload
