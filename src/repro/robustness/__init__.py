"""Fault-tolerant execution: seeded fault injection and recovery policy.

Two halves of one contract:

* :mod:`repro.robustness.faults` — deterministic, picklable fault plans
  (worker SIGKILL, per-cell hangs, transient I/O errors, bit-flips and
  truncations in backend reads) injected at named hook points in the
  shm pool, the cell runner, and the disk backend.  Zero overhead when
  disabled.
* :mod:`repro.robustness.retry` — the recovery machinery those faults
  exercise: bounded retry with exponential backoff, per-cell timeouts,
  and graceful degradation to serial execution recorded as structured
  :class:`DegradationEvent`\\ s (out of band — never in report bytes).

The differential oracle's ``--axis faults`` replays every pinned
scenario under seeded plans from both halves and asserts the final
reports stay byte-identical to the fault-free run with zero leaked
``/dev/shm`` segments.
"""

from ..exceptions import CorruptStoreError, TransientError, WorkerCrashError
from .faults import (
    ACTION_KINDS,
    KINDS,
    PAYLOAD_KINDS,
    FaultClock,
    FaultPlan,
    FaultSpec,
    active_plan,
    filter_bytes,
    fire,
    inject,
    install,
)
from .retry import (
    NON_RETRYABLE,
    RETRYABLE,
    DegradationEvent,
    RetryPolicy,
    call_with_retry,
    drain_events,
    is_transient,
    record_event,
)

__all__ = [
    "ACTION_KINDS",
    "KINDS",
    "NON_RETRYABLE",
    "PAYLOAD_KINDS",
    "RETRYABLE",
    "CorruptStoreError",
    "DegradationEvent",
    "FaultClock",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "TransientError",
    "WorkerCrashError",
    "active_plan",
    "call_with_retry",
    "drain_events",
    "filter_bytes",
    "fire",
    "inject",
    "install",
    "is_transient",
    "record_event",
]
