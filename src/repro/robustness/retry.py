"""Bounded retry, exponential backoff, and degradation bookkeeping.

The recovery contract of the execution layer (see ``docs/robustness.md``):

* **Transient failures are retried** — a bounded number of times, with
  exponential backoff — because they are properties of the *run*, not
  the *input*.  What counts as transient is defined by type:
  :class:`~repro.exceptions.TransientError` (and its subclass
  :class:`~repro.exceptions.WorkerCrashError`) plus raw ``OSError``,
  minus ``FileNotFoundError`` (a missing file won't appear by itself).
* **Exhausted budgets degrade, not fail** — the pool runner falls back
  to serial in-process execution and records a structured
  :class:`DegradationEvent` *out of band*.  Events never enter report
  or figure bytes: byte-identity with the fault-free run is the
  oracle's acceptance criterion, so degradation must be observable
  without being load-bearing.

Events accumulate in a per-process log (:func:`record_event` /
:func:`drain_events`); callers that want them attached to a specific
run pass an ``events=`` list to :func:`repro.experiments.parallel.
run_store_cells`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..exceptions import ConfigError, TransientError

#: Exception types treated as transient by default.
RETRYABLE: tuple[type[BaseException], ...] = (TransientError, OSError)

#: Retryable subtypes that are *not* actually transient.
NON_RETRYABLE: tuple[type[BaseException], ...] = (FileNotFoundError,)


def is_transient(error: BaseException,
                 retry_on: tuple[type[BaseException], ...] = RETRYABLE,
                 no_retry: tuple[type[BaseException], ...] = NON_RETRYABLE) -> bool:
    """Should *error* be retried under the default taxonomy?"""
    return isinstance(error, retry_on) and not isinstance(error, no_retry)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to wait, when to give up.

    ``retries`` counts *re*-tries: the total number of attempts is
    ``retries + 1``.  Backoff is exponential with a cap —
    ``min(cap, base_delay * 2**(attempt-1))`` before attempt 1, 2, ... —
    and attempt 0 never waits.
    """

    retries: int = 2
    cell_timeout: float | None = None
    base_delay: float = 0.05
    cap: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigError(
                f"cell_timeout must be positive or None, got {self.cell_timeout}")
        if self.base_delay < 0 or self.cap < 0:
            raise ConfigError("backoff delays must be non-negative")

    @classmethod
    def from_config(cls, config: Any, **overrides: Any) -> "RetryPolicy":
        """Build a policy from any object with ``retries``/``cell_timeout``
        attributes (an :class:`~repro.align.AlignConfig`, or ``None``)."""
        fields = {
            "retries": getattr(config, "retries", cls.retries),
            "cell_timeout": getattr(config, "cell_timeout", cls.cell_timeout),
        }
        fields.update(overrides)
        return cls(**fields)

    @property
    def attempts(self) -> int:
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before *attempt* (0-based; attempt 0 is free)."""
        if attempt <= 0:
            return 0.0
        return min(self.cap, self.base_delay * 2 ** (attempt - 1))


@dataclass(frozen=True)
class DegradationEvent:
    """A structured record of one graceful-degradation decision.

    ``reason`` is a short machine-readable tag (``"worker-crash"``,
    ``"cell-timeout"``, ``"pool-start"``); ``cells`` lists the item
    indices that were re-run serially; ``error`` is ``repr()`` of the
    final exception that exhausted the budget.
    """

    reason: str
    attempts: int
    cells: tuple[int, ...] = ()
    error: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "reason": self.reason,
            "attempts": self.attempts,
            "cells": list(self.cells),
            "error": self.error,
        }


#: Per-process degradation log (most recent last).  Out-of-band by
#: design: nothing in the report pipeline reads it.
EVENTS: list[DegradationEvent] = []


def record_event(event: DegradationEvent,
                 sink: list[DegradationEvent] | None = None) -> DegradationEvent:
    """Append *event* to the process log and to *sink* (when given)."""
    EVENTS.append(event)
    if sink is not None:
        sink.append(event)
    return event


def drain_events() -> list[DegradationEvent]:
    """Return and clear the per-process degradation log."""
    drained = list(EVENTS)
    EVENTS.clear()
    return drained


def call_with_retry(fn: Callable[[], Any], *,
                    policy: RetryPolicy | None = None,
                    retries: int | None = None,
                    retry_on: tuple[type[BaseException], ...] = RETRYABLE,
                    no_retry: tuple[type[BaseException], ...] = NON_RETRYABLE,
                    sleep: Callable[[float], None] = time.sleep,
                    on_retry: Callable[[int, BaseException], None] | None = None,
                    ) -> Any:
    """Call *fn* until it succeeds or the retry budget is spent.

    Only transient errors (``retry_on`` minus ``no_retry``) are retried;
    anything else propagates immediately.  ``sleep`` is injectable so
    tests can assert the backoff schedule without waiting it out.
    """
    if policy is None:
        policy = RetryPolicy() if retries is None else RetryPolicy(retries=retries)
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        if attempt:
            sleep(policy.delay(attempt))
        try:
            return fn()
        except BaseException as error:  # reprolint: disable=broad-except  # noqa: BLE001 - filtered below
            if not (isinstance(error, retry_on) and not isinstance(error, no_retry)):
                raise
            last = error
            if on_retry is not None:
                on_retry(attempt, error)
    assert last is not None
    raise last


def describe_attempts(errors: Sequence[BaseException]) -> str:
    """A compact one-line history of retry errors, for log messages."""
    return "; ".join(f"attempt {n}: {error!r}" for n, error in enumerate(errors))
