"""The deblanking alignment (paper Section 3.3).

``λ_Deblank = BisimRefine*_{Blanks(G)}(ℓ_G)``: starting from the label
partition (which lumps all blank nodes together), bisimulation refinement
is applied to the *blank nodes only*.  Each blank node thus receives a
color characterizing its contents — the URIs and literals reachable from
it — and two blank nodes are aligned iff those contents coincide.  URIs
and literals keep their label colors, so the deblanking alignment extends
the trivial alignment.
"""

from __future__ import annotations

from ..model.graph import TripleGraph
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from .refinement import bisim_refine_fixpoint


def deblank_partition(
    graph: TripleGraph, interner: ColorInterner | None = None
) -> Partition:
    """``λ_Deblank``: bisimulation refinement restricted to blank nodes."""
    if interner is None:
        interner = ColorInterner()
    initial = label_partition(graph, interner)
    return bisim_refine_fixpoint(graph, initial, graph.blanks(), interner)
