"""The deblanking alignment (paper Section 3.3).

``λ_Deblank = BisimRefine*_{Blanks(G)}(ℓ_G)``: starting from the label
partition (which lumps all blank nodes together), bisimulation refinement
is applied to the *blank nodes only*.  Each blank node thus receives a
color characterizing its contents — the URIs and literals reachable from
it — and two blank nodes are aligned iff those contents coincide.  URIs
and literals keep their label colors, so the deblanking alignment extends
the trivial alignment.
"""

from __future__ import annotations

from ..exceptions import ExperimentError
from ..model.csr import CSRGraph
from ..model.graph import TripleGraph
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from .dense import resolve_refine_engine


def deblank_partition(
    graph: TripleGraph,
    interner: ColorInterner | None = None,
    engine: str = "reference",
    csr: "CSRGraph | None" = None,
) -> Partition:
    """``λ_Deblank``: bisimulation refinement restricted to blank nodes.

    *engine* selects the refinement implementation — ``"reference"`` (the
    dict-based oracle) or ``"dense"`` (flat arrays, see
    :mod:`repro.core.dense`); both produce equivalent partitions.  *csr*
    may hand the dense engine a prebuilt snapshot of *graph* (the hybrid
    alignment shares one across its two refinement phases).
    """
    if interner is None:
        interner = ColorInterner()
    refine = resolve_refine_engine(engine)
    kwargs = {}
    if csr is not None:
        if engine != "dense":
            raise ExperimentError(
                "a CSR snapshot only applies to the dense engine"
            )
        kwargs["csr"] = csr
    initial = label_partition(graph, interner)
    return refine(graph, initial, graph.blanks(), interner, **kwargs)
