"""Dense (flat-array) partition refinement engine.

The reference engine (:mod:`repro.core.refinement`) computes every recolor
key by walking per-node hash sets and interning nested tuples — per-node
Python dict overhead on the hottest loop of the whole pipeline.  This
module keeps the exact same fixpoint semantics but runs each
``BisimRefine`` round over the flat CSR buffers of
:class:`~repro.model.csr.CSRGraph`:

* node colors live in one flat int64 buffer indexed by dense node id,
* each round gathers the colors over the subset's contiguous
  ``(predicate, object)`` arrays, packing every pair into a single
  ``(p_color << 32) | o_color`` integer,
* a node's new color is the interned ``bytes`` encoding of
  ``(current color, sorted unique pair codes)`` — the same structural key
  as the reference engine's ``("recolor", color, pairs)`` tuple, in a
  fixed-width binary form that hashes in one pass.

When NumPy is importable the per-round gather/sort/dedupe runs fully
vectorized (one ``lexsort`` over the subset's edges); otherwise a
pure-Python loop produces byte-identical keys.  The keys are interned in
the *shared* :class:`ColorInterner`, so dense colors are valid everywhere
reference colors are (alignments, overlap enrichment, derivation dumps
degrade to opaque byte keys).  Because both key spaces are injective
encodings of ``(color, pair set)``, a pipeline that uses one engine
throughout produces partitions *equivalent up to color renaming* to the
other engine's — ``tests/test_engine_parity.py`` asserts this across all
four alignment methods and ``benchmarks/test_engine_dense.py`` measures
the speedup.

The design follows the flat-array refinement representations of Rau et
al. (*Computing k-Bisimulations for Large Graphs*, 2022) and the
contiguous node-state layout of the I/O-efficient bisimulation line
(Hellings et al., 2011).
"""

from __future__ import annotations

from array import array
from typing import Callable, Collection, Literal as TypingLiteral

from ..exceptions import PartitionError, UnknownEngineError
from ..model.csr import CSRGraph, subset_mask
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from .refinement import (
    FixpointStats,
    _warn_truncated,
    bisim_refine_fixpoint,
    check_interner_covers,
    reseed_partition,
)

try:  # pragma: no cover - exercised implicitly by the engine tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Pair codes pack two colors into one 64-bit int; colors must stay below
#: this bound for the packing to be injective (2^31 colors is far beyond
#: what this in-memory engine can hold anyway).
_COLOR_LIMIT = 1 << 31


def dense_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int | None = None,
    stats: FixpointStats | None = None,
    csr: CSRGraph | None = None,
) -> Partition:
    """``BisimRefine*_X(λ)`` over flat arrays — drop-in for
    :func:`~repro.core.refinement.bisim_refine_fixpoint`.

    Same contract as the reference engine: *subset* defaults to all nodes,
    the fixpoint is detected through the monotone class count, and when
    *max_rounds* truncates the iteration a warning is logged and
    ``stats.converged`` (pass a :class:`FixpointStats`) is ``False``.
    *csr* may supply a prebuilt snapshot of *graph* to amortize the
    compaction across multiple refinements of the same graph.
    """
    if interner is None:
        partition, interner = reseed_partition(partition)
    else:
        check_interner_covers(partition, interner)
    if stats is None:
        stats = FixpointStats()
    stats.engine = "dense"
    if csr is None:
        csr = CSRGraph(graph)

    coloring = partition.as_dict()
    colors = csr.gather_colors(coloring)
    subset_ids = subset_mask(csr, subset)
    colors, rounds, converged, classes = refine_colors(
        csr, colors, subset_ids, interner, max_rounds
    )

    stats.rounds = rounds
    stats.converged = converged
    stats.initial_classes = partition.num_classes
    stats.final_classes = classes
    if not converged:
        _warn_truncated(stats, max_rounds)

    # Materialize, preserving any off-graph extras of the input partition
    # (`coloring` is already a private copy).
    coloring.update(zip(csr.nodes, colors))
    return Partition(coloring)


def refine_colors(
    csr: CSRGraph,
    colors: list[int],
    subset_ids: list[int],
    interner: ColorInterner,
    max_rounds: int | None = None,
) -> tuple[list[int], int, bool, int]:
    """One ``BisimRefine*`` fixpoint directly over a dense color buffer.

    The low-level entry point of the dense engine: no :class:`Partition`
    objects are materialized, which lets the Algorithm 2 driver
    (:mod:`repro.similarity.dense_overlap`) run many propagation rounds
    against one shared *csr* snapshot and one mutable color buffer.
    *subset_ids* must be dense ids sorted ascending (see
    :func:`~repro.model.csr.subset_mask`).  Returns
    ``(colors, rounds, converged, classes)`` with the same fixpoint
    semantics as :func:`dense_refine_fixpoint`.
    """
    sub_offsets, sub_predicates, sub_objects = csr.subgraph_pairs(subset_ids)
    loop = _refine_loop_numpy if _np is not None else _refine_loop_python
    return loop(
        list(colors), subset_ids, sub_offsets, sub_predicates, sub_objects,
        interner, max_rounds,
    )


def _check_color_budget(interner: ColorInterner) -> None:
    if len(interner) >= _COLOR_LIMIT:
        raise PartitionError(
            "dense engine exhausted its 2^31 color space; "
            "use the reference engine for this workload"
        )


def _refine_loop_python(
    colors: list[int],
    subset_ids: list[int],
    sub_offsets: array,
    sub_predicates: array,
    sub_objects: array,
    interner: ColorInterner,
    max_rounds: int | None,
) -> tuple[list[int], int, bool, int]:
    """Portable round loop; returns ``(colors, rounds, converged, classes)``."""
    intern = interner.intern
    num_subset = len(subset_ids)
    current_classes = len(set(colors))
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return colors, rounds, False, current_classes
        _check_color_budget(interner)
        # One simultaneous BisimRefine round: keys read `colors`, writes go
        # to the `new_colors` copy.
        codes = [
            (colors[p] << 32) | colors[o]
            for p, o in zip(sub_predicates, sub_objects)
        ]
        new_colors = colors.copy()
        for k in range(num_subset):
            start = sub_offsets[k]
            end = sub_offsets[k + 1]
            block = codes[start:end]
            if end - start > 1:
                block = sorted(set(block))
            dense_id = subset_ids[k]
            block.insert(0, colors[dense_id])
            new_colors[dense_id] = intern(array("q", block).tobytes())
        refined_classes = len(set(new_colors))
        rounds += 1
        if refined_classes == current_classes:
            # The round was a pure recoloring: the previous iterate already
            # was the fixpoint (Definition 4).
            return colors, rounds, True, current_classes
        colors = new_colors
        current_classes = refined_classes


def _refine_loop_numpy(
    colors: list[int],
    subset_ids: list[int],
    sub_offsets: array,
    sub_predicates: array,
    sub_objects: array,
    interner: ColorInterner,
    max_rounds: int | None,
) -> tuple[list[int], int, bool, int]:
    """Vectorized round loop producing byte-identical keys to the portable one.

    Per round: one fancy-indexed gather builds the packed pair codes, one
    ``lexsort`` orders them within each subject's segment, a shift-compare
    drops duplicates, and the only remaining Python work is slicing each
    node's key bytes out of one contiguous buffer and interning it.
    """
    intern = interner.intern
    num_subset = len(subset_ids)
    colors_np = _np.array(colors, dtype=_np.int64)
    subset_np = _np.array(subset_ids, dtype=_np.int64)
    preds = _np.frombuffer(sub_predicates, dtype=_np.int64)
    objs = _np.frombuffer(sub_objects, dtype=_np.int64)
    offsets = _np.frombuffer(sub_offsets, dtype=_np.int64)
    # Which subset position each pair belongs to (pairs are segment-grouped).
    pair_owner = _np.repeat(_np.arange(num_subset), _np.diff(offsets))

    current_classes = len(_np.unique(colors_np)) if len(colors_np) else 0
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return colors_np.tolist(), rounds, False, current_classes
        _check_color_budget(interner)
        codes = (colors_np[preds] << 32) | colors_np[objs]
        order = _np.lexsort((codes, pair_owner))
        owner_sorted = pair_owner[order]
        codes_sorted = codes[order]
        if len(codes_sorted):
            keep = _np.empty(len(codes_sorted), dtype=bool)
            keep[0] = True
            keep[1:] = (owner_sorted[1:] != owner_sorted[:-1]) | (
                codes_sorted[1:] != codes_sorted[:-1]
            )
            owner_kept = owner_sorted[keep]
            codes_kept = codes_sorted[keep]
        else:
            owner_kept = owner_sorted
            codes_kept = codes_sorted
        counts = _np.bincount(owner_kept, minlength=num_subset).astype(_np.int64)
        # Key layout: one contiguous int64 buffer holding, per subset node,
        # [current color, sorted unique codes...]; bounds in byte units.
        bounds = _np.empty(num_subset + 1, dtype=_np.int64)
        bounds[0] = 0
        _np.cumsum(counts + 1, out=bounds[1:])
        combined = _np.empty(int(bounds[-1]), dtype=_np.int64)
        head_positions = bounds[:-1]
        combined[head_positions] = colors_np[subset_np]
        body_mask = _np.ones(len(combined), dtype=bool)
        body_mask[head_positions] = False
        combined[body_mask] = codes_kept
        buffer = combined.tobytes()
        byte_bounds = (bounds * 8).tolist()
        new_subset_colors = [
            intern(buffer[byte_bounds[k] : byte_bounds[k + 1]])
            for k in range(num_subset)
        ]
        new_colors_np = colors_np.copy()
        new_colors_np[subset_np] = new_subset_colors
        refined_classes = len(_np.unique(new_colors_np))
        rounds += 1
        if refined_classes == current_classes:
            return colors_np.tolist(), rounds, True, current_classes
        colors_np = new_colors_np
        current_classes = refined_classes


#: Engine selector threaded through the partition builders and the API.
RefinementEngine = TypingLiteral["reference", "dense"]

#: Engines ordered as (name -> fixpoint function with the shared contract).
REFINEMENT_ENGINES: dict[str, Callable[..., Partition]] = {
    "reference": bisim_refine_fixpoint,
    "dense": dense_refine_fixpoint,
}


def resolve_refine_engine(engine: str) -> Callable[..., Partition]:
    """The fixpoint function for *engine* (``"reference"``/``"dense"``)."""
    try:
        return REFINEMENT_ENGINES[engine]
    except (KeyError, TypeError):
        raise UnknownEngineError(
            f"unknown refinement engine {engine!r}; "
            f"expected one of {tuple(sorted(REFINEMENT_ENGINES))}"
        ) from None
