"""Hash-signature k-bisimulation (bounded-round refinement).

The paper's methods iterate ``BisimRefine`` to its *fixpoint*; the
scalable bounded variant of the large-graph literature (Rau, Richerby &
Scherp, *Computing k-Bisimulations for Large Graphs*, 2022) stops after
``k`` rounds and replaces every structural recolor key by a fixed-width
hash **signature**:

    sig_r(n) = hash(color_{r-1}(n), sorted set of packed
                    (pred_color, obj_color) codes of out(n))

Two properties make this the right compute shape:

* the per-node signature depends only on the *previous* round's color
  buffer, so one round is embarrassingly parallel — the shared-memory
  pool (:mod:`repro.experiments.ksig_shard`) shards the subset per node
  and every worker hashes its contiguous slice independently;
* the signature payload is **byte-identical** to the dense engine's
  recolor key (:mod:`repro.core.dense`): one ``int64`` buffer holding
  ``[current color, sorted unique (p_color << 32) | o_color codes]``.
  The NumPy builder and the pure-Python builder produce the same bytes,
  so reference/dense engines and serial/sharded runs intern identical
  color sequences — *byte-identical* partitions, not merely equivalent
  ones.

Hashing is not free of risk: a signature collision would silently merge
unrelated classes.  Every round therefore verifies the signatures
against full-width (128-bit) digests of the same payloads, **across all
rounds of one run**, and raises
:class:`~repro.exceptions.SignatureCollisionError` on any mismatch —
collisions are detected, never absorbed (the hypothesis suite injects a
deliberately degenerate hasher to pin this).

Because each round's color embeds the previous one, the iterates are
monotonically finer in ``k``, coarser than the full fixpoint, and equal
to it (as a partition) once ``k`` reaches the number of productive
refinement rounds — at most the combined graph's diameter on the pinned
oracle scenarios (the ``kbisim`` differential axis enforces this).
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable, Collection, Sequence

from ..exceptions import (
    ExperimentError,
    PartitionError,
    SignatureCollisionError,
    UnknownEngineError,
)
from ..model.csr import CSRGraph, subset_mask
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from .refinement import check_interner_covers

try:  # pragma: no cover - exercised implicitly by the engine tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: Payload engines: ``"dense"`` vectorizes the payload build with NumPy
#: when importable; ``"reference"`` always runs the portable loop.  Both
#: produce byte-identical payloads (and therefore identical signatures).
SIGNATURE_ENGINES: tuple[str, ...] = ("reference", "dense")

#: A signature hasher: payload bytes -> non-negative int (63 bits used).
SignatureHasher = Callable[[bytes], int]

#: Signatures are masked to 63 bits so they always fit a signed int64
#: slot (the shared-memory shard protocol ships them as ``array("q")``).
_SIG_MASK = (1 << 63) - 1

#: Width of the verification digest appended per node by the shards.
DIGEST_BYTES = 16

#: Same packing bound as the dense engine: pair codes pack two colors
#: into one int64, so the interner must stay below 2^31 colors.
_COLOR_LIMIT = 1 << 31


def default_signature_hasher(payload: bytes) -> int:
    """The 63-bit BLAKE2b signature of one recolor-key payload.

    Process-stable (unlike builtin ``hash``), so signatures agree across
    the shard pool's worker processes.
    """
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big") & _SIG_MASK


def signature_digest(payload: bytes) -> bytes:
    """The full-width verification digest of one recolor-key payload.

    Always BLAKE2b-128, independent of the (injectable) signature
    hasher — this is what makes a degenerate or colliding hasher
    *detectable* rather than silently class-merging.
    """
    return blake2b(payload, digest_size=DIGEST_BYTES).digest()


@dataclass
class SignatureStats:
    """Per-run diagnostics of one k-signature refinement.

    Mirrors :class:`~repro.core.refinement.FixpointStats` and adds the
    bound ``k`` plus the per-round class counts (``class_counts[r]`` is
    the number of classes after executed round ``r + 1``).
    """

    #: Signature rounds actually executed (including a final unproductive
    #: round that merely confirms early stabilization).
    rounds: int = 0
    #: True iff the partition stabilized before exhausting ``k`` rounds —
    #: the result then *is* the full ``BisimRefine*`` fixpoint restricted
    #: to the subset.
    converged: bool = False
    #: Class count of the initial partition.
    initial_classes: int = 0
    #: Class count of the returned partition.
    final_classes: int = 0
    #: Payload engine that produced the result ("reference" or "dense").
    engine: str = "reference"
    #: The round bound the run was configured with.
    k: int = 0
    #: Class count after each executed round.
    class_counts: list[int] = field(default_factory=list)


class SignatureVerifier:
    """Cross-round collision detection: signature -> full-width digest.

    The map is global to one refinement run on purpose — colors minted
    in round 2 coexist with round-1 colors in the interner, so a
    cross-round signature collision is exactly as corrupting as an
    intra-round one.
    """

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: dict[int, bytes] = {}

    def check(self, sigs: Sequence[int], digests: bytes) -> None:
        """Verify one batch of ``(signature, digest)`` pairs.

        *digests* holds ``DIGEST_BYTES`` per signature, concatenated in
        the same order.  Raises :class:`SignatureCollisionError` when one
        signature maps to two distinct digests.
        """
        seen = self._seen
        width = DIGEST_BYTES
        for position, sig in enumerate(sigs):
            digest = digests[position * width : (position + 1) * width]
            previous = seen.setdefault(int(sig), digest)
            if previous != digest:
                raise SignatureCollisionError(
                    f"k-bisimulation signature collision: signature "
                    f"{int(sig)} covers two distinct recolor keys; "
                    f"rerun with a wider signature hasher"
                )


def _payload_bounds_python(
    colors: Sequence[int],
    subset_ids: Sequence[int],
    sub_offsets: Sequence[int],
    sub_predicates: Sequence[int],
    sub_objects: Sequence[int],
    lo: int,
    hi: int,
) -> tuple[bytes, list[int]]:
    """Portable payload builder for subset positions ``[lo, hi)``.

    Returns one contiguous buffer of the shard's recolor-key payloads
    plus the byte bound of each node's slice — the exact key layout of
    the dense engine: ``array("q", [current color, *sorted unique
    (p_color << 32) | o_color codes]).tobytes()``.
    """
    chunks = bytearray()
    bounds = [0]
    for position in range(lo, hi):
        start = sub_offsets[position]
        end = sub_offsets[position + 1]
        block = [
            (colors[sub_predicates[i]] << 32) | colors[sub_objects[i]]
            for i in range(start, end)
        ]
        if end - start > 1:
            block = sorted(set(block))
        block.insert(0, colors[subset_ids[position]])
        chunks += array("q", block).tobytes()
        bounds.append(len(chunks))
    return bytes(chunks), bounds


def _as_int64(buffer: Sequence[int]) -> Any:
    """*buffer* as an int64 ndarray (zero-copy for arrays and views)."""
    if isinstance(buffer, _np.ndarray):
        return buffer
    if isinstance(buffer, (array, bytes, memoryview)):
        return _np.frombuffer(buffer, dtype=_np.int64)
    return _np.asarray(buffer, dtype=_np.int64)


def _payload_bounds_numpy(
    colors: Sequence[int],
    subset_ids: Sequence[int],
    sub_offsets: Sequence[int],
    sub_predicates: Sequence[int],
    sub_objects: Sequence[int],
    lo: int,
    hi: int,
) -> tuple[bytes, list[int]]:
    """Vectorized payload builder, byte-identical to the portable one.

    The shard's pair range is gathered and packed in one fancy-indexed
    pass, ``lexsort`` orders the codes within each owner segment, a
    shift-compare drops duplicates, and the payload buffer is assembled
    as one contiguous int64 array (the dense engine's key layout).
    """
    colors_np = _as_int64(colors)
    offsets = _as_int64(sub_offsets)[lo : hi + 1]
    start = int(offsets[0])
    end = int(offsets[-1])
    preds = _as_int64(sub_predicates)[start:end]
    objs = _as_int64(sub_objects)[start:end]
    num = hi - lo
    owner = _np.repeat(_np.arange(num), _np.diff(offsets))
    codes = (colors_np[preds] << 32) | colors_np[objs]
    order = _np.lexsort((codes, owner))
    owner_sorted = owner[order]
    codes_sorted = codes[order]
    if len(codes_sorted):
        keep = _np.empty(len(codes_sorted), dtype=bool)
        keep[0] = True
        keep[1:] = (owner_sorted[1:] != owner_sorted[:-1]) | (
            codes_sorted[1:] != codes_sorted[:-1]
        )
        owner_kept = owner_sorted[keep]
        codes_kept = codes_sorted[keep]
    else:
        owner_kept = owner_sorted
        codes_kept = codes_sorted
    counts = _np.bincount(owner_kept, minlength=num).astype(_np.int64)
    bounds = _np.empty(num + 1, dtype=_np.int64)
    bounds[0] = 0
    _np.cumsum(counts + 1, out=bounds[1:])
    combined = _np.empty(int(bounds[-1]), dtype=_np.int64)
    head_positions = bounds[:-1]
    combined[head_positions] = colors_np[_as_int64(subset_ids)[lo:hi]]
    body_mask = _np.ones(len(combined), dtype=bool)
    body_mask[head_positions] = False
    combined[body_mask] = codes_kept
    return combined.tobytes(), [int(b) * 8 for b in bounds]


def shard_signatures(
    colors: Sequence[int],
    subset_ids: Sequence[int],
    sub_offsets: Sequence[int],
    sub_predicates: Sequence[int],
    sub_objects: Sequence[int],
    lo: int,
    hi: int,
    hasher: SignatureHasher | None = None,
    engine: str = "dense",
) -> tuple[array, bytes]:
    """Signatures + verification digests of subset positions ``[lo, hi)``.

    The pure per-shard function shared by the serial driver (one shard
    covering the whole subset) and the shared-memory pool workers (one
    contiguous shard each): ``(array("q") of signatures, concatenated
    DIGEST_BYTES-wide digests)``, both in subset order.  *colors* is the
    previous round's full color buffer (dense-id indexed); the adjacency
    arguments are the subset-restricted CSR arrays
    (:meth:`~repro.model.csr.CSRGraph.subgraph_pairs`).
    """
    build = (
        _payload_bounds_numpy
        if engine == "dense" and _np is not None
        else _payload_bounds_python
    )
    buffer, bounds = build(
        colors, subset_ids, sub_offsets, sub_predicates, sub_objects, lo, hi
    )
    hash_one = hasher if hasher is not None else default_signature_hasher
    sigs = array("q")
    digests = bytearray()
    for position in range(len(bounds) - 1):
        payload = buffer[bounds[position] : bounds[position + 1]]
        sigs.append(hash_one(payload) & _SIG_MASK)
        digests += signature_digest(payload)
    return sigs, bytes(digests)


#: One round's whole-subset signature batch: given the current full
#: color buffer, return ``(signatures, digests)`` in subset order.
SignatureBatch = Callable[[list[int]], "tuple[array, bytes]"]


def ksignature_rounds(
    colors: list[int],
    subset_ids: Sequence[int],
    batch: SignatureBatch,
    k: int,
    interner: ColorInterner,
    stats: SignatureStats | None = None,
) -> tuple[list[int], int, bool, int]:
    """The engine-independent round loop over a dense color buffer.

    Runs up to *k* signature rounds, interning each node's signature as
    its next color (``("ksig", sig)`` keys, in subset order — identical
    across engines and shard widths, so the produced colors are
    byte-identical everywhere).  Early-exits like the fixpoint engines:
    a round that does not grow the class count was a pure recoloring, so
    the *previous* iterate is returned and ``converged`` is ``True``.
    Returns ``(colors, rounds, converged, classes)``.
    """
    verifier = SignatureVerifier()
    current_classes = len(set(colors))
    rounds = 0
    while True:
        if rounds >= k:
            return colors, rounds, False, current_classes
        if len(interner) >= _COLOR_LIMIT:
            raise PartitionError(
                "k-signature refinement exhausted its 2^31 color space"
            )
        sigs, digests = batch(colors)
        verifier.check(sigs, digests)
        intern = interner.intern
        new_colors = list(colors)
        for position, dense_id in enumerate(subset_ids):
            new_colors[dense_id] = intern(("ksig", sigs[position]))
        refined_classes = len(set(new_colors))
        rounds += 1
        if stats is not None:
            stats.class_counts.append(refined_classes)
        if refined_classes == current_classes:
            # A pure recoloring: the previous iterate already was the
            # (subset-restricted) fixpoint.
            return colors, rounds, True, current_classes
        colors = new_colors
        current_classes = refined_classes


def ksignature_colors(
    csr: CSRGraph,
    colors: list[int],
    subset_ids: Sequence[int],
    k: int,
    interner: ColorInterner,
    hasher: SignatureHasher | None = None,
    engine: str = "reference",
    stats: SignatureStats | None = None,
) -> tuple[list[int], int, bool, int]:
    """Serial k-signature refinement directly over a dense color buffer.

    The low-level entry point mirroring
    :func:`~repro.core.dense.refine_colors`: *subset_ids* must be dense
    ids sorted ascending (:func:`~repro.model.csr.subset_mask`).
    """
    sub_offsets, sub_predicates, sub_objects = csr.subgraph_pairs(list(subset_ids))
    num_subset = len(subset_ids)

    def batch(current: list[int]) -> tuple[array, bytes]:
        return shard_signatures(
            current, subset_ids, sub_offsets, sub_predicates, sub_objects,
            0, num_subset, hasher=hasher, engine=engine,
        )

    return ksignature_rounds(
        list(colors), subset_ids, batch, k, interner, stats=stats
    )


def prepare_signature_run(
    graph: TripleGraph,
    interner: ColorInterner | None,
    k: int,
    engine: str,
    subset: Collection[NodeId] | None,
    partition: Partition | None,
    csr: CSRGraph | None,
    stats: SignatureStats | None,
) -> tuple[
    CSRGraph, ColorInterner, SignatureStats, dict[NodeId, int], list[int], list[int]
]:
    """Validate and stage one k-signature run (shared serial/pooled prep).

    Returns ``(csr, interner, stats, coloring, colors, subset_ids)`` —
    the serial driver (:func:`ksignature_partition`) and the
    shared-memory pool (:mod:`repro.experiments.ksig_shard`) both start
    from exactly this state, which is what makes their outputs
    byte-identical.
    """
    if engine not in SIGNATURE_ENGINES:
        raise UnknownEngineError(
            f"unknown signature engine {engine!r}; "
            f"expected one of {SIGNATURE_ENGINES}"
        )
    if isinstance(k, bool) or not isinstance(k, int) or k < 0:
        raise ExperimentError(f"k must be a non-negative integer, got {k!r}")
    if csr is not None and engine != "dense":
        raise ExperimentError("a CSR snapshot only applies to the dense engine")
    if interner is None:
        interner = ColorInterner()
    if partition is None:
        partition = label_partition(graph, interner)
    else:
        check_interner_covers(partition, interner)
    if stats is None:
        stats = SignatureStats()
    stats.engine = engine
    stats.k = k
    if csr is None:
        csr = CSRGraph(graph)

    coloring = partition.as_dict()
    colors = csr.gather_colors(coloring)
    subset_ids = subset_mask(csr, subset)
    stats.initial_classes = partition.num_classes
    return csr, interner, stats, coloring, colors, subset_ids


def ksignature_partition(
    graph: TripleGraph,
    interner: ColorInterner | None = None,
    k: int = 3,
    engine: str = "reference",
    subset: Collection[NodeId] | None = None,
    partition: Partition | None = None,
    csr: CSRGraph | None = None,
    stats: SignatureStats | None = None,
    hasher: SignatureHasher | None = None,
) -> Partition:
    """``k`` rounds of hash-signature bisimulation refinement of *graph*.

    Starts from *partition* (default: the label partition, like the
    paper's methods), refines *subset* (default: all nodes) for at most
    *k* rounds and returns the resulting :class:`Partition`.  With
    ``k >= `` the number of productive refinement rounds the result
    equals ``BisimRefine*`` restricted to the subset; smaller ``k``
    yields a sound intermediate refinement (coarser than the fixpoint,
    monotonically finer in ``k``).

    *engine* selects the payload builder (``"dense"`` vectorizes with
    NumPy when importable); both engines produce byte-identical colors.
    *csr* may hand a prebuilt snapshot of *graph* to the dense engine.
    *hasher* replaces the 63-bit BLAKE2b signature hasher (testing
    hook); collisions are detected against full-width digests either
    way and raise :class:`~repro.exceptions.SignatureCollisionError`.
    """
    csr, interner, stats, coloring, colors, subset_ids = prepare_signature_run(
        graph, interner, k, engine, subset, partition, csr, stats
    )
    colors, rounds, converged, classes = ksignature_colors(
        csr, colors, subset_ids, k, interner,
        hasher=hasher, engine=engine, stats=stats,
    )
    stats.rounds = rounds
    stats.converged = converged
    stats.final_classes = classes

    # Materialize, preserving any off-graph extras of the input partition
    # (`coloring` is already a private copy).
    coloring.update(zip(csr.nodes, colors))
    return Partition(coloring)


def graph_diameter(graph: TripleGraph) -> int:
    """The longest finite directed distance over the out-pair relation.

    Edges are ``subject -> predicate`` and ``subject -> object`` — the
    relation signature payloads traverse — so this is the natural bound
    on how far a label distinction can propagate per refinement round.
    Unreachable pairs do not count (the maximum is over *finite*
    distances); an edgeless graph has diameter 0.
    """
    adjacency: dict[NodeId, list[NodeId]] = {}
    for node in graph.nodes():
        targets: list[NodeId] = []
        for predicate, obj in graph.out(node):
            targets.append(predicate)
            targets.append(obj)
        adjacency[node] = targets
    diameter = 0
    for start in adjacency:
        depths: dict[NodeId, int] = {start: 0}
        queue: deque[NodeId] = deque([start])
        while queue:
            node = queue.popleft()
            depth = depths[node] + 1
            for successor in adjacency[node]:
                if successor not in depths:
                    depths[successor] = depth
                    queue.append(successor)
                    if depth > diameter:
                        diameter = depth
    return diameter
