"""The trivial alignment (paper Section 3.1).

``λ_Trivial`` colors every non-blank node with its label and every blank
node with its own identity, so ``Align(λ_Trivial)`` connects exactly the
cross-version pairs of nodes carrying the same URI or literal label — the
baseline every other method progressively improves on.
"""

from __future__ import annotations

from ..model.graph import NodeId, TripleGraph
from ..model.labels import is_blank
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner
from .dense import resolve_refine_engine


def trivial_partition(
    graph: TripleGraph, interner: ColorInterner, engine: str = "reference"
) -> Partition:
    """``λ_Trivial``: label equality on non-blank nodes, identity on blanks.

    ``λ_Trivial`` involves no refinement, so *engine* changes nothing; it
    is accepted (and validated) so all four partition builders share one
    signature.
    """
    resolve_refine_engine(engine)  # validate the name, nothing else
    colors: dict[NodeId, Color] = {}
    for node, label in graph.labels().items():
        if is_blank(label):
            colors[node] = interner.node_color(node)
        else:
            colors[node] = interner.label_color(label)
    return Partition(colors)
