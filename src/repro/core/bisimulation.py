"""Maximal bisimulation on triple graphs (paper Sections 2.3 and 3.2).

Bisimulation on a triple graph treats the triple ``(s, p, o)`` as an
unlabeled edge from ``s`` to the *pair* ``(p, o)`` — the predicate is a
node and participates in the bisimulation itself (Definition 2).

Two implementations are provided:

* :func:`bisimulation_partition` — the production path: partition
  refinement from the label partition over all nodes (Proposition 1 states
  this captures the maximal bisimulation);
* :func:`naive_maximal_bisimulation` — an independent O(n²·e) reference
  that computes the greatest fixpoint directly on the pair relation; it is
  used by the test suite to cross-check the refinement implementation on
  small random graphs.
"""

from __future__ import annotations

from itertools import combinations, product

from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition, label_partition
from ..partition.interner import ColorInterner
from .refinement import bisim_refine_fixpoint


def bisimulation_partition(
    graph: TripleGraph, interner: ColorInterner | None = None
) -> Partition:
    """``λ_Bisim = BisimRefine*_{N_G}(ℓ_G)`` (Proposition 1).

    The returned partition's classes are exactly the maximal-bisimulation
    equivalence classes of *graph*.
    """
    if interner is None:
        interner = ColorInterner()
    initial = label_partition(graph, interner)
    return bisim_refine_fixpoint(graph, initial, None, interner)


def naive_maximal_bisimulation(graph: TripleGraph) -> set[tuple[NodeId, NodeId]]:
    """The maximal bisimulation as an explicit pair relation.

    Greatest-fixpoint computation: start from all label-equal pairs and
    repeatedly delete pairs whose outbound neighborhoods cannot simulate
    each other under the current relation, until stable.  Quadratic in the
    node count per sweep — strictly a reference implementation for tests.
    """
    nodes = list(graph.nodes())
    relation: set[tuple[NodeId, NodeId]] = {
        (n, m)
        for n in nodes
        for m in nodes
        if graph.label(n) == graph.label(m)
    }

    def simulates(n: NodeId, m: NodeId) -> bool:
        """Can every out-pair of n be matched by one of m (under relation)?"""
        for predicate, obj in graph.out(n):
            matched = any(
                (predicate, other_predicate) in relation
                and (obj, other_obj) in relation
                for other_predicate, other_obj in graph.out(m)
            )
            if not matched:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            n, m = pair
            if not (simulates(n, m) and simulates(m, n)):
                relation.discard(pair)
                changed = True
    return relation


def are_bisimilar(graph: TripleGraph, first: NodeId, second: NodeId) -> bool:
    """Are two nodes of *graph* bisimilar (via the refinement partition)?"""
    partition = bisimulation_partition(graph)
    return partition[first] == partition[second]


def partition_to_relation_agrees(
    partition: Partition, relation: set[tuple[NodeId, NodeId]]
) -> bool:
    """Does a partition induce exactly the given (symmetric) pair relation?

    Test helper for Proposition 1: the refinement partition must induce the
    same pair set as :func:`naive_maximal_bisimulation`.
    """
    nodes = list(partition)
    for n, m in product(nodes, repeat=2):
        in_partition = partition[n] == partition[m]
        in_relation = (n, m) in relation
        if in_partition != in_relation:
            return False
    return True
