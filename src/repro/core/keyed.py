"""Keyed refinement — paper Section 6 future work.

"In the future, we would like to explore variants of our approach where
only selected parts of the outbound neighborhood are used, for instance
specified by a notion of a key for graph databases, possibly allowing to
align nodes of graphs following different structure."

A *key specification* selects, per node, which outbound pairs define its
identity: here, a predicate filter (by URI label).  Nodes then align when
their *key attributes* match, ignoring non-key differences — e.g. aligning
entities on ``name`` while tolerating edited ``comment`` fields.
"""

from __future__ import annotations

from typing import Callable, Collection, Iterable

from ..model.graph import NodeId, TripleGraph
from ..model.labels import URI
from ..model.union import CombinedGraph
from ..partition.alignment import unaligned_non_literals
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner
from .deblank import deblank_partition
from .hybrid import blanked_partition
from .refinement import check_interner_covers

#: Decides whether an outbound pair participates in a node's key.
PairFilter = Callable[[TripleGraph, NodeId, NodeId], bool]


def predicate_key(predicates: Iterable[URI]) -> PairFilter:
    """A key selecting outbound pairs whose predicate label is listed.

    Predicate URIs are compared by label, so the key survives the
    combined-graph node-identifier indirection.
    """
    allowed = set(predicates)

    def accepts(graph: TripleGraph, predicate: NodeId, obj: NodeId) -> bool:
        label = graph.label(predicate)
        return isinstance(label, URI) and label in allowed

    return accepts


def keyed_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId],
    interner: ColorInterner,
    key: PairFilter,
    max_rounds: int | None = None,
) -> Partition:
    """Refinement whose recolor keys see only key-selected outbound pairs."""
    check_interner_covers(partition, interner)
    nodes = list(subset)
    current = partition
    current_classes = current.num_classes
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return current
        updates: dict[NodeId, Color] = {}
        for node in nodes:
            pair_colors = tuple(
                sorted(
                    {
                        (current[predicate], current[obj])
                        for predicate, obj in graph.out(node)
                        if key(graph, predicate, obj)
                    }
                )
            )
            updates[node] = interner.intern(("keyed", current[node], pair_colors))
        refined = current.with_colors(updates)
        refined_classes = refined.num_classes
        rounds += 1
        if refined_classes == current_classes:
            return current
        current = refined
        current_classes = refined_classes


def keyed_hybrid_partition(
    graph: CombinedGraph,
    key: PairFilter,
    interner: ColorInterner | None = None,
    base: Partition | None = None,
) -> Partition:
    """Hybrid alignment where blanked nodes are identified by key attributes.

    Coarser than the full hybrid alignment on the same input: ignoring
    non-key pairs can only merge classes.  Useful when non-key content is
    known to churn between versions (the GtoPdb comment fields, say).
    """
    if interner is None:
        interner = ColorInterner()
    if base is None:
        base = deblank_partition(graph, interner)
    unaligned = unaligned_non_literals(graph, base)
    blanked = blanked_partition(base, unaligned, interner)
    return keyed_refine_fixpoint(graph, blanked, unaligned, interner, key)
