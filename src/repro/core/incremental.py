"""Worklist-based (incremental) partition refinement.

The batch fixpoint of :mod:`repro.core.refinement` recolors *every* node of
the subset in every round — O(rounds × |E|).  In practice most classes
stabilize early; this module implements the classical optimization of only
re-examining nodes whose outbound signature may have changed, i.e. the
predecessors of nodes whose class changed in the previous round (a
signature-based cousin of Paige–Tarjan's "process the smaller half" [13]).

The result is the same partition (up to recoloring): partition refinement
reaches the unique coarsest stable refinement of the initial partition
regardless of split order.  Our test suite checks equivalence with the
batch implementation on random graphs, and the micro benchmark
``bench_micro_refinement`` measures the speedup.

Precondition: the classes of the initial partition must not mix subset and
non-subset nodes (the deblanking and full-bisimulation refinements satisfy
this by construction: subset nodes start in the blank-label class while
non-subset nodes carry label colors).  The hybrid refinement does *not*
satisfy it relative to the exact color semantics — a recolored node's
derivation tree may legitimately collide with the color of an
already-aligned node — so hybrid always uses the batch variant.
"""

from __future__ import annotations

import itertools
from typing import Collection

from ..exceptions import PartitionError
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner
from .refinement import check_interner_covers

#: Per-call epoch for split colors.  Fixpoint maintenance reuses one
#: interner across a whole version chain; without the epoch the key
#: ``("split", 3)`` minted in step k would alias the unrelated third
#: split of step k+5 and wrongly merge their classes.
_EPOCHS = itertools.count()


def incremental_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    dirty: Collection[NodeId] | None = None,
    seed_closed: bool = False,
) -> Partition:
    """Refine *partition* on *subset* to the coarsest stable refinement.

    Equivalent (as a partition) to
    :func:`repro.core.refinement.bisim_refine_fixpoint`; the color values
    differ.

    *dirty* seeds the worklist: only the given subset nodes (and whatever
    their splits transitively dirty) are examined.  The default examines
    the whole subset, which is the from-scratch refinement.  A caller
    passing a smaller seed asserts that every class not reachable from it
    is already stable — that is the contract the fixpoint-maintenance
    layer (:mod:`repro.core.maintain`) establishes before calling in.

    *seed_closed* additionally asserts that *dirty* is closed under
    in-subset predecessors and that every class containing a dirty node
    consists of dirty nodes only.  The member map is then built from the
    seed instead of the whole subset, and the O(|V|) purity check is
    skipped — the O(delta) fast path of fixpoint maintenance, which
    establishes both properties by resetting exactly the predecessor
    closure of the touched nodes.
    """
    if interner is None:
        # Re-seed foreign colors into a fresh interner so that the split
        # colors minted below can never collide with them.
        interner = ColorInterner()
        partition = Partition(
            {node: interner.intern(("seed", color)) for node, color in partition.items()}
        )
    else:
        check_interner_covers(partition, interner)
    colors: dict[NodeId, Color] = partition.as_dict()
    subset_nodes = set(subset) if subset is not None else set(graph.nodes())
    dirty = set(subset_nodes) if dirty is None else set(dirty) & subset_nodes

    members: dict[Color, set[NodeId]] = {}
    if seed_closed:
        # The caller vouches that dirty classes contain dirty nodes only
        # and that dirty is predecessor-closed in the subset: the member
        # map restricted to the seed is then complete for every class the
        # worklist can ever touch.
        for node in dirty:
            members.setdefault(colors[node], set()).add(node)
    else:
        # Class map restricted to subset nodes, plus the mixed-class check
        # (one pass over the coloring instead of one scan per class).
        for node in subset_nodes:
            members.setdefault(colors[node], set()).add(node)
        class_sizes: dict[Color, int] = {}
        for color in colors.values():
            class_sizes[color] = class_sizes.get(color, 0) + 1
        for color, subset_members in members.items():
            if class_sizes[color] != len(subset_members):
                raise PartitionError(
                    "incremental refinement requires initial classes that do "
                    "not mix subset and non-subset nodes; use the batch variant"
                )

    def signature(node: NodeId) -> tuple[tuple[Color, Color], ...]:
        return tuple(sorted({(colors[p], colors[o]) for p, o in graph.out(node)}))

    occurrences = graph.occurrence_index()
    epoch = next(_EPOCHS)
    split_count = 0
    while dirty:
        affected_colors = {colors[node] for node in dirty}
        moved: list[NodeId] = []
        for color in affected_colors:
            class_members = members.get(color)
            if not class_members or len(class_members) == 1:
                continue
            groups: dict[tuple, set[NodeId]] = {}
            for node in class_members:
                groups.setdefault(signature(node), set()).add(node)
            if len(groups) <= 1:
                continue
            # The group with the smallest signature keeps the old color; the
            # others get split colors made unique by a running counter (the
            # same (color, signature) pair can otherwise recur in a later
            # round and wrongly merge groups that have since diverged).
            ordered = sorted(groups.items(), key=lambda item: item[0])
            for __, group_nodes in ordered[1:]:
                split_count += 1
                new_color = interner.intern(("split", epoch, split_count))
                for node in group_nodes:
                    colors[node] = new_color
                    moved.append(node)
                members[new_color] = set(group_nodes)
                class_members -= group_nodes
        dirty = set()
        for node in moved:
            for predecessor in occurrences.get(node, ()):
                if predecessor in subset_nodes:
                    dirty.add(predecessor)
    return Partition(colors)
