"""Bisimulation partition refinement and the Trivial/Deblank/Hybrid alignments.

Also home to the Section 6 future-work variants: context-aware
(bidirectional) refinement and keyed refinement.
"""

from .bisimulation import (
    are_bisimilar,
    bisimulation_partition,
    naive_maximal_bisimulation,
    partition_to_relation_agrees,
)
from .context import (
    bidirectional_bisimulation_partition,
    bidirectional_refine_fixpoint,
    context_hybrid_partition,
    in_neighborhood,
    inbound_index,
)
from .deblank import deblank_partition
from .dense import (
    REFINEMENT_ENGINES,
    RefinementEngine,
    dense_refine_fixpoint,
    refine_colors,
    resolve_refine_engine,
)
from .dense_weights import dense_weight_fixpoint
from .hybrid import blanked_partition, hybrid_partition
from .incremental import incremental_refine_fixpoint
from .keyed import keyed_hybrid_partition, keyed_refine_fixpoint, predicate_key
from .refinement import (
    FixpointStats,
    WeightFixpointStats,
    bisim_refine_fixpoint,
    bisim_refine_step,
    check_interner_covers,
    recolor_key,
    refinement_trace,
)
from .sharded import shard_of, sharded_refine_fixpoint
from .trivial import trivial_partition

__all__ = [
    "FixpointStats",
    "REFINEMENT_ENGINES",
    "RefinementEngine",
    "WeightFixpointStats",
    "are_bisimilar",
    "bidirectional_bisimulation_partition",
    "bidirectional_refine_fixpoint",
    "bisim_refine_fixpoint",
    "bisim_refine_step",
    "bisimulation_partition",
    "blanked_partition",
    "check_interner_covers",
    "context_hybrid_partition",
    "deblank_partition",
    "dense_refine_fixpoint",
    "dense_weight_fixpoint",
    "hybrid_partition",
    "in_neighborhood",
    "inbound_index",
    "incremental_refine_fixpoint",
    "keyed_hybrid_partition",
    "keyed_refine_fixpoint",
    "naive_maximal_bisimulation",
    "partition_to_relation_agrees",
    "predicate_key",
    "recolor_key",
    "refine_colors",
    "refinement_trace",
    "resolve_refine_engine",
    "shard_of",
    "sharded_refine_fixpoint",
    "trivial_partition",
]
