"""Dense (flat-array) weight iteration for weighted refinement (§4.5).

The reference ``weighted_refine_fixpoint`` Jacobi-iterates the weight
recurrence

    reweight_ω(n) = ⊕ { (ω(p) ⊕ ω(o)) / |out_G(n)| | (p, o) ∈ out_G(n) }

one node at a time over per-node Python sets.  This module runs the same
iteration over the contiguous edge arrays of a
:class:`~repro.model.csr.CSRGraph` snapshot: one gather of the predicate
and object weights, one capped add, one segment sum per sweep.

Two useful identities keep the vectorization exact for the paper's
default operator ``x ⊕ y = min(x + y, 1)``:

* all contributions are non-negative, so the left fold with intermediate
  capping equals ``min(Σ contributions, 1)`` — once a prefix saturates at
  1, every further ``⊕`` leaves it there, and the plain sum can only be
  larger;
* segment sums are taken from one sequential ``cumsum`` over the subset's
  edges, which the pure-Python fallback replays addition-for-addition, so
  NumPy and fallback produce bit-identical weights (pinned by
  ``tests/test_overlap_dense.py``).

Non-default ``⊕`` operators (probabilistic, max) take a portable
fold-per-node path that mirrors the reference ``oplus_sum`` semantics
over the same CSR edge order.
"""

from __future__ import annotations

from typing import Sequence

from ..model.csr import CSRGraph
from ..oplus import OplusOperator, oplus
from .refinement import WeightFixpointStats, _warn_weight_truncated

try:  # pragma: no cover - exercised implicitly by the engine tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def dense_weight_fixpoint(
    csr: CSRGraph,
    weights: list[float],
    subset_ids: list[int],
    epsilon: float,
    max_rounds: int = 10_000,
    operator: OplusOperator = oplus,
    stats: WeightFixpointStats | None = None,
) -> list[float]:
    """Jacobi-iterate the weights of *subset_ids* until stabilization.

    *weights* is a dense-id-indexed buffer covering every node of *csr*;
    a new list is returned, the input is not mutated.  Sink nodes keep
    their weight (the recurrence leaves them untouched), so they are
    dropped from the iterated subset up front; an empty subset is a
    no-op.  Convergence semantics match the reference engine: sweeps run
    until the largest absolute change falls below *epsilon*, and a
    ``max_rounds`` truncation is logged and reported via ``stats``.
    """
    if stats is None:
        stats = WeightFixpointStats()
    stats.engine = "dense"
    stats.subset_size = len(subset_ids)
    out_offsets = csr.out_offsets
    active = [i for i in subset_ids if out_offsets[i + 1] > out_offsets[i]]
    new_weights = list(weights)
    if not active:
        stats.rounds = 0
        stats.converged = True
        stats.final_delta = 0.0
        return new_weights
    offsets, predicates, objects = csr.subgraph_pairs(active)
    if operator is oplus and _np is not None:
        return _iterate_numpy(
            new_weights, active, offsets, predicates, objects,
            epsilon, max_rounds, stats,
        )
    if operator is oplus:
        return _iterate_python(
            new_weights, active, offsets, predicates, objects,
            epsilon, max_rounds, stats,
        )
    return _iterate_generic(
        new_weights, active, offsets, predicates, objects,
        epsilon, max_rounds, operator, stats,
    )


def _finish(
    stats: WeightFixpointStats, rounds: int, delta: float,
    converged: bool, max_rounds: int,
) -> None:
    stats.rounds = rounds
    stats.final_delta = delta
    stats.converged = converged
    if not converged:
        _warn_weight_truncated(stats, max_rounds)


def _iterate_numpy(
    weights: list[float], active: list[int],
    offsets: Sequence[int], predicates: Sequence[int], objects: Sequence[int],
    epsilon: float, max_rounds: int, stats: WeightFixpointStats,
) -> list[float]:
    """Vectorized sweeps for the default capped-addition operator."""
    w = _np.array(weights, dtype=_np.float64)
    sub = _np.array(active, dtype=_np.int64)
    preds = _np.frombuffer(predicates, dtype=_np.int64)
    objs = _np.frombuffer(objects, dtype=_np.int64)
    bounds = _np.frombuffer(offsets, dtype=_np.int64)
    starts = bounds[:-1]
    last_edges = bounds[1:] - 1
    has_prefix = starts > 0
    prefix_edges = _np.maximum(starts - 1, 0)
    #: Per-edge normalizer 1/|out(n)| is applied as a division to keep the
    #: arithmetic identical to the reference ``operator(...) / size``.
    sizes = _np.repeat(
        (bounds[1:] - starts).astype(_np.float64), bounds[1:] - starts
    )
    rounds = 0
    delta = 0.0
    converged = False
    while rounds < max_rounds:
        contributions = _np.minimum(w[preds] + w[objs], 1.0) / sizes
        cumulative = _np.cumsum(contributions)
        segment = cumulative[last_edges] - _np.where(
            has_prefix, cumulative[prefix_edges], 0.0
        )
        updated = _np.minimum(segment, 1.0)
        delta = float(_np.max(_np.abs(updated - w[sub])))
        w[sub] = updated
        rounds += 1
        if delta < epsilon:
            converged = True
            break
    _finish(stats, rounds, delta, converged, max_rounds)
    return w.tolist()


def _iterate_python(
    weights: list[float], active: list[int],
    offsets: Sequence[int], predicates: Sequence[int], objects: Sequence[int],
    epsilon: float, max_rounds: int, stats: WeightFixpointStats,
) -> list[float]:
    """Portable sweeps replaying the NumPy path addition-for-addition."""
    w = weights
    num_edges = len(predicates)
    num_active = len(active)
    sizes = [0.0] * num_edges
    for k in range(num_active):
        size = float(offsets[k + 1] - offsets[k])
        for e in range(offsets[k], offsets[k + 1]):
            sizes[e] = size
    cumulative = [0.0] * num_edges
    rounds = 0
    delta = 0.0
    converged = False
    while rounds < max_rounds:
        running = 0.0
        for e in range(num_edges):
            total = w[predicates[e]] + w[objects[e]]
            if total > 1.0:
                total = 1.0
            running = running + total / sizes[e]
            cumulative[e] = running
        delta = 0.0
        updates = [0.0] * num_active
        for k in range(num_active):
            start = offsets[k]
            segment = cumulative[offsets[k + 1] - 1] - (
                cumulative[start - 1] if start > 0 else 0.0
            )
            updated = segment if segment < 1.0 else 1.0
            updates[k] = updated
            change = abs(updated - w[active[k]])
            if change > delta:
                delta = change
        for k in range(num_active):
            w[active[k]] = updates[k]
        rounds += 1
        if delta < epsilon:
            converged = True
            break
    _finish(stats, rounds, delta, converged, max_rounds)
    return w


def _iterate_generic(
    weights: list[float], active: list[int],
    offsets: Sequence[int], predicates: Sequence[int], objects: Sequence[int],
    epsilon: float, max_rounds: int, operator: OplusOperator,
    stats: WeightFixpointStats,
) -> list[float]:
    """Fold-per-node sweeps for non-default ``⊕`` operators.

    Mirrors the reference ``oplus_sum`` left fold over the CSR edge
    order; used whenever *operator* is not the capped addition (those
    operators do not factor into a plain segment sum).
    """
    w = weights
    num_active = len(active)
    rounds = 0
    delta = 0.0
    converged = False
    while rounds < max_rounds:
        delta = 0.0
        updates = [0.0] * num_active
        for k in range(num_active):
            start, end = offsets[k], offsets[k + 1]
            size = end - start
            total = 0.0
            for e in range(start, end):
                total = operator(
                    total, operator(w[predicates[e]], w[objects[e]]) / size
                )
            updates[k] = total
            change = abs(total - w[active[k]])
            if change > delta:
                delta = change
        for k in range(num_active):
            w[active[k]] = updates[k]
        rounds += 1
        if delta < epsilon:
            converged = True
            break
    _finish(stats, rounds, delta, converged, max_rounds)
    return w
