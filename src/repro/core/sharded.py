"""Sharded (BSP-style) partition refinement.

The paper's scalability discussion points at [16] (Schätzle et al.,
*Large-scale bisimulation of RDF graphs*) and suggests the methods "should
scale to larger datasets, using methods such as MapReduce".  This module
simulates that execution model faithfully in-process:

* nodes are hash-partitioned into ``shards``;
* each *superstep* recolors every shard independently against the colors
  published by the previous superstep (exactly MapReduce's map phase —
  shards never see intra-round updates);
* the new colors are then exchanged (the shuffle/reduce phase) and the
  next superstep begins, until the global class count stabilizes.

Because the batch refinement is itself a synchronous (Jacobi) iteration,
the sharded run produces an *equivalent partition* in the *same number of
supersteps* — which is the point: the algorithm parallelizes without any
loss, as the paper claims.  Tests assert the equivalence; the micro
benchmark measures the bookkeeping overhead.
"""

from __future__ import annotations

from typing import Collection, Hashable

from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner
from .refinement import check_interner_covers


def shard_of(node: NodeId, shards: int) -> int:
    """Deterministic shard assignment (hash-partitioning by repr)."""
    return hash(repr(node)) % shards


def sharded_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    shards: int = 4,
    max_supersteps: int | None = None,
) -> tuple[Partition, int]:
    """Refine to the fixpoint in BSP supersteps; returns (partition, steps).

    Equivalent (as a partition) to the batch fixpoint; colors are interned
    by a single coordinator, mirroring the central signature-dictionary of
    the MapReduce formulation in [16].
    """
    if interner is None:
        interner = ColorInterner()
        partition = Partition(
            {node: interner.intern(("seed", color)) for node, color in partition.items()}
        )
    else:
        check_interner_covers(partition, interner)
    nodes = list(subset) if subset is not None else list(graph.nodes())
    shard_members: list[list[NodeId]] = [[] for _ in range(shards)]
    for node in nodes:
        shard_members[shard_of(node, shards)].append(node)

    current = partition
    current_classes = current.num_classes
    supersteps = 0
    while True:
        if max_supersteps is not None and supersteps >= max_supersteps:
            return current, supersteps
        # Map phase: every shard recolors its nodes against the published
        # colors; updates are local until the exchange.
        shard_updates: list[dict[NodeId, Color]] = []
        for members in shard_members:
            local: dict[NodeId, Color] = {}
            for node in members:
                pair_colors = tuple(
                    sorted({(current[p], current[o]) for p, o in graph.out(node)})
                )
                local[node] = interner.intern(("recolor", current[node], pair_colors))
            shard_updates.append(local)
        # Shuffle/reduce phase: publish all shard outputs at once.
        merged: dict[NodeId, Color] = {}
        for local in shard_updates:
            merged.update(local)
        refined = current.with_colors(merged)
        refined_classes = refined.num_classes
        supersteps += 1
        if refined_classes == current_classes:
            return current, supersteps
        current = refined
        current_classes = refined_classes
