"""The hybrid alignment (paper Section 3.4).

Deblanking cannot align two URI nodes carrying *different* URI labels
(e.g. ``ed-uni`` renamed to ``uoe``): the label is baked into the color at
every refinement step.  The hybrid alignment therefore

1. takes the deblanking partition,
2. resets the color of every unaligned non-literal node (URIs *and*
   blanks) to the neutral blank color ``⊥`` — paper equation (3) — putting
   all of them into one cluster, and
3. re-runs bisimulation refinement on exactly those nodes, letting their
   *contents* define their identity.

The paper notes that starting from ``λ_Trivial`` instead of ``λ_Deblank``
yields the same result (our tests check this), and that the alignments
form a hierarchy ``Align(λ_Trivial) ⊆ Align(λ_Deblank) ⊆ Align(λ_Hybrid)``.
"""

from __future__ import annotations

from typing import Iterable

from ..exceptions import ExperimentError
from ..model.csr import CSRGraph
from ..model.graph import NodeId
from ..model.union import CombinedGraph
from ..partition.alignment import unaligned_non_literals
from ..partition.coloring import Partition
from ..partition.interner import ColorInterner
from .deblank import deblank_partition
from .dense import resolve_refine_engine


def blanked_partition(
    partition: Partition, nodes: Iterable[NodeId], interner: ColorInterner
) -> Partition:
    """``Blank(λ, X)``: reset the color of every node in X to ``⊥``."""
    blank = interner.blank_color()
    return partition.with_colors({node: blank for node in nodes})


def hybrid_partition(
    graph: CombinedGraph,
    interner: ColorInterner | None = None,
    base: Partition | None = None,
    engine: str = "reference",
    csr: CSRGraph | None = None,
) -> Partition:
    """``λ_Hybrid = BisimRefine*_{UN(λ)}(Blank(λ, UN(λ)))`` for ``λ = λ_Deblank``.

    *base* may be supplied to start from a different partition (the paper
    points out ``λ_Trivial`` gives the same result); it must share
    *interner*.  *engine* selects the refinement implementation (see
    :mod:`repro.core.dense`) and is used for both the deblanking base and
    the hybrid re-refinement, so hash-consed colors stay in one key space.
    *csr* may hand the dense engine a prebuilt snapshot of *graph* (the
    overlap pipeline shares one snapshot across the base and all of its
    own rounds).
    """
    refine = resolve_refine_engine(engine)
    if csr is not None and engine != "dense":
        raise ExperimentError("a CSR snapshot only applies to the dense engine")
    if interner is None:
        interner = ColorInterner()
    kwargs = {}
    if engine == "dense":
        # One CSR snapshot serves both the deblanking base and the hybrid
        # re-refinement (the graph does not change in between).
        kwargs["csr"] = csr if csr is not None else CSRGraph(graph)
    if base is None:
        base = deblank_partition(graph, interner, engine=engine, **kwargs)
    unaligned = unaligned_non_literals(graph, base)
    blanked = blanked_partition(base, unaligned, interner)
    return refine(graph, blanked, unaligned, interner, **kwargs)
