"""Context-aware (bidirectional) refinement — paper Section 6 future work.

The published methods define a node's identity by its *contents* (outbound
neighborhood).  The paper suggests that "better alignment could
potentially be obtained by using not only the contents of a node but also
its *context*, the nodes from which the given node can be reached".  This
module implements that variant:

* ``in_G(n) = {(p, s) | (s, p, n) ∈ E_G}`` — the inbound neighborhood,
* a recolor function combining the current color with the colors of the
  outbound *and* inbound pairs,
* the corresponding fixpoint and a context-aware hybrid alignment.

Bidirectional bisimilarity is finer than outbound bisimilarity: two
out-bisimilar nodes reachable through different contexts are separated.
That cuts both ways for alignment — it distinguishes sink URIs that the
outbound methods conflate (e.g. predicates exported by a direct mapping),
at the price of refusing to align nodes whose context legitimately changed
between versions.  The trade-off is measured in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Collection

from ..model.graph import NodeId, OutPair, TripleGraph
from ..model.union import CombinedGraph
from ..partition.alignment import unaligned_non_literals
from ..partition.coloring import Partition, label_partition
from ..partition.interner import Color, ColorInterner
from .deblank import deblank_partition
from .hybrid import blanked_partition
from .refinement import check_interner_covers


def in_neighborhood(graph: TripleGraph, node: NodeId) -> set[OutPair]:
    """``in_G(node)``: the (predicate, subject) pairs reaching *node*.

    Derived from the occurrence index lazily; for repeated bulk use prefer
    :func:`inbound_index`.
    """
    pairs: set[OutPair] = set()
    for subject in graph.occurrences(node):
        for predicate, obj in graph.out(subject):
            if obj == node:
                pairs.add((predicate, subject))
    return pairs


def inbound_index(graph: TripleGraph) -> dict[NodeId, set[OutPair]]:
    """``in_G`` for every node, in one pass over the edges."""
    index: dict[NodeId, set[OutPair]] = {node: set() for node in graph.nodes()}
    for subject, predicate, obj in graph.edges():
        index[obj].add((predicate, subject))
    return index


def bidirectional_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int | None = None,
) -> Partition:
    """Refine until stable under *both* outbound and inbound signatures.

    The recolor key is ``(λ(n), out-pairs, in-pairs)``; the fixpoint logic
    mirrors :func:`repro.core.refinement.bisim_refine_fixpoint` (classes
    only split, so stability is a class-count test).
    """
    if interner is None:
        interner = ColorInterner()
        partition = Partition(
            {node: interner.intern(("seed", color)) for node, color in partition.items()}
        )
    else:
        check_interner_covers(partition, interner)
    nodes = list(subset) if subset is not None else list(graph.nodes())
    inbound = inbound_index(graph)
    current = partition
    current_classes = current.num_classes
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return current
        updates: dict[NodeId, Color] = {}
        for node in nodes:
            out_colors = tuple(
                sorted({(current[p], current[o]) for p, o in graph.out(node)})
            )
            in_colors = tuple(
                sorted({(current[p], current[s]) for p, s in inbound[node]})
            )
            updates[node] = interner.intern(
                ("bicolor", current[node], out_colors, in_colors)
            )
        refined = current.with_colors(updates)
        refined_classes = refined.num_classes
        rounds += 1
        if refined_classes == current_classes:
            return current
        current = refined
        current_classes = refined_classes


def bidirectional_bisimulation_partition(
    graph: TripleGraph, interner: ColorInterner | None = None
) -> Partition:
    """Full bidirectional bisimulation from the label partition."""
    if interner is None:
        interner = ColorInterner()
    return bidirectional_refine_fixpoint(
        graph, label_partition(graph, interner), None, interner
    )


def context_hybrid_partition(
    graph: CombinedGraph,
    interner: ColorInterner | None = None,
    base: Partition | None = None,
) -> Partition:
    """The hybrid alignment with context-aware refinement of unaligned nodes.

    Same construction as :func:`repro.core.hybrid.hybrid_partition`, but
    the re-identification of blanked nodes also sees their inbound pairs —
    the Section 6 "context" variant.
    """
    if interner is None:
        interner = ColorInterner()
    if base is None:
        base = deblank_partition(graph, interner)
    unaligned = unaligned_non_literals(graph, base)
    blanked = blanked_partition(base, unaligned, interner)
    return bidirectional_refine_fixpoint(graph, blanked, unaligned, interner)
