"""Bisimulation partition refinement (paper Section 3.2).

One refinement step recolors a node with the combination of its current
color and the colors of its outbound (predicate, object) pairs — paper
equation (1):

    recolor_λ(n) = (λ(n), {(λ(p), λ(o)) | (p, o) ∈ out_G(n)})

``BisimRefine_X`` applies ``recolor`` to the nodes of a chosen subset ``X``
only (equation (2)); iterating it to a fixpoint yields ``BisimRefine*_X``
(Definition 4).  Because the new color embeds the old one, every step is
*finer* than the last, so classes only ever split and the fixpoint test
reduces to "did the number of classes stop growing?".

Colors are hash-consed through :class:`~repro.partition.interner.ColorInterner`,
which is the paper's "simple hashing technique": the derivation tree of a
color is stored once as a DAG and color comparison is integer equality.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Collection, Iterable

from ..exceptions import PartitionError
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner

logger = logging.getLogger(__name__)


@dataclass
class FixpointStats:
    """Diagnostics of one ``BisimRefine*`` run.

    Pass an instance as the ``stats`` argument of a fixpoint function to
    receive it filled in; the engines (reference and dense) populate the
    same fields so runs are comparable.

    ``converged`` is ``False`` exactly when the iteration was cut off by
    ``max_rounds`` before the partition stabilized — the returned partition
    is then a sound *intermediate* refinement (finer than the input,
    coarser than the fixpoint) but not ``BisimRefine*`` itself.
    """

    #: Refinement rounds actually executed (the final, unproductive round
    #: that merely confirms the fixpoint counts).
    rounds: int = 0
    #: True iff the returned partition is the fixpoint.
    converged: bool = False
    #: Class count of the initial partition.
    initial_classes: int = 0
    #: Class count of the returned partition.
    final_classes: int = 0
    #: Engine that produced the result ("reference" or "dense").
    engine: str = "reference"


def _warn_truncated(stats: FixpointStats, max_rounds: int | None) -> None:
    """Log the silent-truncation case so callers get a signal by default."""
    logger.warning(
        "%s engine stopped after max_rounds=%s before reaching a fixpoint; "
        "the returned partition is an intermediate refinement "
        "(%d classes after %d rounds), not BisimRefine*",
        stats.engine,
        max_rounds,
        stats.final_classes,
        stats.rounds,
    )


@dataclass
class WeightFixpointStats:
    """Diagnostics of one weighted Jacobi iteration (paper Section 4.5).

    The weight recurrence of ``BisimRefine*`` for weighted partitions is
    iterated until no weight moves by more than ``ε``; both engines
    (reference and dense) fill the same fields, mirroring
    :class:`FixpointStats` for the color fixpoint.  ``converged`` is
    ``False`` exactly when ``max_rounds`` cut the iteration off while some
    weight still moved by ``ε`` or more — the returned weights are then an
    intermediate iterate, not the weight fixpoint.
    """

    #: Jacobi sweeps actually executed (including the final one whose
    #: maximum change fell below ε).
    rounds: int = 0
    #: True iff the weights stabilized within ``max_rounds``.
    converged: bool = False
    #: Maximum absolute weight change of the last executed sweep.
    final_delta: float = 0.0
    #: Number of nodes whose weights were iterated.
    subset_size: int = 0
    #: Engine that produced the result ("reference" or "dense").
    engine: str = "reference"


def _warn_weight_truncated(stats: WeightFixpointStats, max_rounds: int) -> None:
    """Signal a weight iteration cut off before stabilization."""
    logger.warning(
        "%s engine stopped the weight iteration after max_rounds=%s with the "
        "largest change still at %.3g (>= epsilon); the returned weights are "
        "an intermediate iterate, not the weight fixpoint",
        stats.engine,
        max_rounds,
        stats.final_delta,
    )


def check_interner_covers(partition: Partition, interner: ColorInterner) -> None:
    """Guard against mixing partitions and interners.

    Refinement keys embed the current colors; if those colors were interned
    elsewhere, freshly interned keys can collide with them and silently
    merge unrelated classes.  Every color of *partition* must therefore be
    a valid index into *interner*.
    """
    limit = len(interner)
    for node, color in partition.items():
        if not 0 <= color < limit:
            raise PartitionError(
                f"color {color} of node {node!r} was not produced by the "
                "supplied interner; pass the interner used to build the "
                "initial partition"
            )


def reseed_partition(partition: Partition) -> tuple[Partition, ColorInterner]:
    """Re-intern a foreign partition's colors into a fresh interner.

    Used by every fixpoint entry point when no interner is supplied: the
    incoming colors are preserved as classes (``("seed", color)`` keys)
    but become valid indices of the new interner, so the recolor keys
    minted during refinement cannot collide with them.
    """
    interner = ColorInterner()
    reseeded = Partition(
        {node: interner.intern(("seed", color)) for node, color in partition.items()}
    )
    return reseeded, interner


def recolor_key(
    graph: TripleGraph, partition: Partition, node: NodeId
) -> tuple[str, Color, tuple[tuple[Color, Color], ...]]:
    """The structural key of ``recolor_λ(node)``.

    The out-pair color *set* is canonicalized as a sorted duplicate-free
    tuple so that equal sets produce equal keys.
    """
    pair_colors = {
        (partition[predicate], partition[obj])
        for predicate, obj in graph.out(node)
    }
    return ("recolor", partition[node], tuple(sorted(pair_colors)))


def bisim_refine_step(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId],
    interner: ColorInterner,
) -> Partition:
    """One-step ``BisimRefine_X(λ)`` (paper equation (2)).

    Nodes in *subset* are recolored simultaneously (all keys are computed
    against the incoming partition); all other nodes keep their color.
    """
    updates: dict[NodeId, Color] = {}
    for node in subset:
        updates[node] = interner.intern(recolor_key(graph, partition, node))
    return partition.with_colors(updates)


def bisim_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int | None = None,
    stats: FixpointStats | None = None,
) -> Partition:
    """``BisimRefine*_X(λ)``: iterate until the partition stabilizes.

    *subset* defaults to all nodes (full bisimulation).  The fixpoint test
    exploits monotonicity: each step is finer than the last, hence the
    partitions are equivalent iff their class counts agree.

    *max_rounds* bounds the iteration for diagnostics; the natural bound is
    the number of nodes (each productive round adds at least one class).
    **Truncation is not silent**: when the bound cuts the iteration before
    stabilization the returned partition is only an intermediate refinement
    (finer than the input, coarser than the fixpoint), a warning is logged,
    and ``stats.converged`` (pass a :class:`FixpointStats`) is ``False``.
    """
    if interner is None:
        partition, interner = reseed_partition(partition)
    else:
        check_interner_covers(partition, interner)
    if stats is None:
        stats = FixpointStats()
    stats.engine = "reference"
    stats.initial_classes = partition.num_classes
    nodes = list(subset) if subset is not None else list(graph.nodes())
    current = partition
    current_classes = current.num_classes
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            stats.rounds = rounds
            stats.converged = False
            stats.final_classes = current_classes
            _warn_truncated(stats, max_rounds)
            return current
        refined = bisim_refine_step(graph, current, nodes, interner)
        refined_classes = refined.num_classes
        rounds += 1
        if refined_classes == current_classes:
            # Equivalent partition: the step was a pure recoloring, so the
            # previous iterate already was the fixpoint (Definition 4 returns
            # Λ^n(λ) for the minimal n with Λ^n(λ) ≡ Λ^{n+1}(λ)).
            stats.rounds = rounds
            stats.converged = True
            stats.final_classes = current_classes
            return current
        current = refined
        current_classes = refined_classes


def refinement_trace(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int = 1000,
) -> list[Partition]:
    """All iterates ``λ0, λ1, …`` up to and including the fixpoint.

    Used by the paper-walkthrough example to reproduce Figure 4's
    round-by-round derivation trees.
    """
    if interner is None:
        partition, interner = reseed_partition(partition)
    else:
        check_interner_covers(partition, interner)
    nodes = list(subset) if subset is not None else list(graph.nodes())
    trace = [partition]
    for _ in range(max_rounds):
        refined = bisim_refine_step(graph, trace[-1], nodes, interner)
        if refined.num_classes == trace[-1].num_classes:
            return trace
        trace.append(refined)
    return trace
