"""Bisimulation partition refinement (paper Section 3.2).

One refinement step recolors a node with the combination of its current
color and the colors of its outbound (predicate, object) pairs — paper
equation (1):

    recolor_λ(n) = (λ(n), {(λ(p), λ(o)) | (p, o) ∈ out_G(n)})

``BisimRefine_X`` applies ``recolor`` to the nodes of a chosen subset ``X``
only (equation (2)); iterating it to a fixpoint yields ``BisimRefine*_X``
(Definition 4).  Because the new color embeds the old one, every step is
*finer* than the last, so classes only ever split and the fixpoint test
reduces to "did the number of classes stop growing?".

Colors are hash-consed through :class:`~repro.partition.interner.ColorInterner`,
which is the paper's "simple hashing technique": the derivation tree of a
color is stored once as a DAG and color comparison is integer equality.
"""

from __future__ import annotations

from typing import Collection, Iterable

from ..exceptions import PartitionError
from ..model.graph import NodeId, TripleGraph
from ..partition.coloring import Partition
from ..partition.interner import Color, ColorInterner


def check_interner_covers(partition: Partition, interner: ColorInterner) -> None:
    """Guard against mixing partitions and interners.

    Refinement keys embed the current colors; if those colors were interned
    elsewhere, freshly interned keys can collide with them and silently
    merge unrelated classes.  Every color of *partition* must therefore be
    a valid index into *interner*.
    """
    limit = len(interner)
    for node, color in partition.items():
        if not 0 <= color < limit:
            raise PartitionError(
                f"color {color} of node {node!r} was not produced by the "
                "supplied interner; pass the interner used to build the "
                "initial partition"
            )


def recolor_key(
    graph: TripleGraph, partition: Partition, node: NodeId
) -> tuple[str, Color, tuple[tuple[Color, Color], ...]]:
    """The structural key of ``recolor_λ(node)``.

    The out-pair color *set* is canonicalized as a sorted duplicate-free
    tuple so that equal sets produce equal keys.
    """
    pair_colors = {
        (partition[predicate], partition[obj])
        for predicate, obj in graph.out(node)
    }
    return ("recolor", partition[node], tuple(sorted(pair_colors)))


def bisim_refine_step(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId],
    interner: ColorInterner,
) -> Partition:
    """One-step ``BisimRefine_X(λ)`` (paper equation (2)).

    Nodes in *subset* are recolored simultaneously (all keys are computed
    against the incoming partition); all other nodes keep their color.
    """
    updates: dict[NodeId, Color] = {}
    for node in subset:
        updates[node] = interner.intern(recolor_key(graph, partition, node))
    return partition.with_colors(updates)


def bisim_refine_fixpoint(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int | None = None,
) -> Partition:
    """``BisimRefine*_X(λ)``: iterate until the partition stabilizes.

    *subset* defaults to all nodes (full bisimulation).  The fixpoint test
    exploits monotonicity: each step is finer than the last, hence the
    partitions are equivalent iff their class counts agree.

    *max_rounds* bounds the iteration for diagnostics; the natural bound is
    the number of nodes (each productive round adds at least one class).
    """
    if interner is None:
        # Re-seed foreign colors into a fresh interner (preserves classes,
        # prevents collisions with the recolor keys minted below).
        interner = ColorInterner()
        partition = Partition(
            {node: interner.intern(("seed", color)) for node, color in partition.items()}
        )
    else:
        check_interner_covers(partition, interner)
    nodes = list(subset) if subset is not None else list(graph.nodes())
    current = partition
    current_classes = current.num_classes
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return current
        refined = bisim_refine_step(graph, current, nodes, interner)
        refined_classes = refined.num_classes
        rounds += 1
        if refined_classes == current_classes:
            # Equivalent partition: the step was a pure recoloring, so the
            # previous iterate already was the fixpoint (Definition 4 returns
            # Λ^n(λ) for the minimal n with Λ^n(λ) ≡ Λ^{n+1}(λ)).
            return current
        current = refined
        current_classes = refined_classes


def refinement_trace(
    graph: TripleGraph,
    partition: Partition,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    max_rounds: int = 1000,
) -> list[Partition]:
    """All iterates ``λ0, λ1, …`` up to and including the fixpoint.

    Used by the paper-walkthrough example to reproduce Figure 4's
    round-by-round derivation trees.
    """
    if interner is None:
        interner = ColorInterner()
        partition = Partition(
            {node: interner.intern(("seed", color)) for node, color in partition.items()}
        )
    else:
        check_interner_covers(partition, interner)
    nodes = list(subset) if subset is not None else list(graph.nodes())
    trace = [partition]
    for _ in range(max_rounds):
        refined = bisim_refine_step(graph, trace[-1], nodes, interner)
        if refined.num_classes == trace[-1].num_classes:
            return trace
        trace.append(refined)
    return trace
