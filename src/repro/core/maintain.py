"""Fixpoint maintenance under version deltas (incremental alignment).

Batch alignment recomputes the coarsest stable refinement from scratch
for every version; a long-running archive receives version ``k+1`` as a
*delta*.  Following the partition-maintenance playbook of Luo et al.
(maintaining bisimulation partitions under graph updates), this module
updates a previous stable partition under a
:class:`~repro.delta.changes.VersionChanges` instead of starting over:

1. **Rename pass** — identifier renames never change refinement
   structure, so the previous partition's keys are substituted through
   the rename map.  This is the dominant win on real archives: blank
   identifiers reshuffle wholesale between versions, and with an
   identity-preserving delta the reshuffle costs one dict rebuild.
2. **Seeding** — the *directly changed* nodes (inserted nodes, subjects
   of inserted/deleted edges, relabeled nodes) are closed under
   predecessors (:meth:`~repro.model.graph.TripleGraph.occurrences`).
   A node's fixpoint color is a function of its forward cone, so exactly
   the closure's nodes can change class: nodes outside it keep their
   previous class, closure members reset to their initial (label) class.
3. **Worklist refinement** — the dirty-seeded worklist of
   :mod:`repro.core.incremental` re-splits starting from the closure
   only; untouched classes are never re-examined.
4. **Merge pass** — splitting alone cannot *coarsen*, but deletions (and
   insertions) can make previously distinct classes bisimilar.  The
   stable partition is quotiented to class level and re-refined from the
   initial label grouping — the technique of
   :func:`repro.experiments.store.joint_quotient_colors` — and classes
   with equal quotient fixpoint colors merge.  Every stable partition
   refining the initial one is finer than the coarsest stable
   refinement, so merging at quotient level reaches it exactly.

The result is the same partition (up to recoloring) as batch
:func:`~repro.core.refinement.bisim_refine_fixpoint` on the new graph —
the property test ``tests/test_maintain.py`` and the differential
oracle's incremental axis pin this.

Precondition (checked, never silently violated): the previous
partition's non-subset nodes must be colored *by label*, one class per
label.  Deblanking and full bisimulation satisfy this by construction
(refinement only ever recolors subset nodes, which start from the label
partition); the hybrid refinement does **not** — its non-subset side
carries refined blank colors — so maintaining a hybrid partition raises
:class:`~repro.exceptions.PartitionError`.  Use :func:`maintain_or_batch`
to fall back to batch refinement in that case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Collection

from ..delta.changes import VersionChanges
from ..exceptions import PartitionError
from ..model.graph import NodeId, TripleGraph
from ..model.labels import is_blank
from ..partition.coloring import Partition, label_partition
from ..partition.interner import Color, ColorInterner
from .incremental import incremental_refine_fixpoint
from .refinement import bisim_refine_fixpoint

#: Per-call epoch for the colors minted during maintenance.  A chain
#: shares one interner across every step (that is what makes carrying
#: the previous colors verbatim safe); the epoch keeps one step's
#: reset/quotient/merged keys from aliasing another step's.
_EPOCHS = itertools.count()


@dataclass
class MaintenanceStats:
    """Diagnostics of one maintenance run."""

    #: Directly changed nodes (inserted, relabeled, edge-set changed).
    touched: int = 0
    #: Size of the predecessor closure of the touched set.
    affected: int = 0
    #: Worklist seed: closure members inside the refined subset.
    refined: int = 0
    #: Subset nodes whose previous class was carried over untouched.
    kept: int = 0
    #: Classes removed by the coarsening merge pass.
    merged_classes: int = 0
    #: ``True`` when :func:`maintain_or_batch` fell back to batch.
    fell_back: bool = False


def deblank_fixpoint(graph: TripleGraph, interner: ColorInterner | None = None) -> Partition:
    """The deblanking fixpoint of one version, computed from scratch.

    The chain's anchor: version 0 has no previous partition to maintain.
    """
    if interner is None:
        interner = ColorInterner()
    return bisim_refine_fixpoint(
        graph, label_partition(graph, interner), graph.blanks(), interner
    )


def maintain_fixpoint(
    graph: TripleGraph,
    previous: Partition,
    changes: VersionChanges,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    stats: MaintenanceStats | None = None,
    canon_cache: dict[Color, int] | None = None,
) -> Partition:
    """Update a stable partition under *changes* instead of recomputing.

    *previous* must be a stable refinement over the before-graph's nodes
    (e.g. the previous version's deblanking fixpoint), *changes* the
    delta connecting the before-graph to *graph*, and *subset* the
    refined subset **in after-graph identifiers** (``None`` = all nodes,
    i.e. full bisimulation; ``graph.blanks()`` = deblanking).  Returns
    the coarsest stable refinement of *graph*'s label partition on
    *subset* — equivalent (as a partition) to batch refinement.

    Raises :class:`PartitionError` when the delta does not connect
    *previous* to *graph* or when *previous* violates the label-grounded
    precondition (see the module docstring); it never silently diverges.

    When *interner* is the interner that produced *previous* (the
    chain-maintenance contract), the carried colors are reused verbatim:
    only the affected closure and the inserted nodes are re-interned,
    which is the O(delta) seeding that makes maintenance cheaper than
    batch.  With ``interner=None`` (or a non-covering interner) every
    carried color is re-wrapped into the supplied/fresh interner first.

    *canon_cache* (chain contract only, pass the same dict every step)
    lets the coarsening pass reuse canonical cone forms of classes that
    were carried untouched, replacing its O(classes) quotient refinement
    with an O(closure) bottom-up canonization whenever the blank quotient
    is acyclic (cyclic quotients fall back to the full pass for that
    step).  Sound because a kept class's members have untouched forward
    cones, and the canonical form is a function of the concrete cone.
    """
    renames = changes.rename_map()
    labels = graph.labels()

    # 1. Rename pass: carry previous colors to after-graph identifiers.
    # One C-level dict copy plus O(delta) surgical updates.  Two survivors
    # may collapse onto one identifier (a rename target that already
    # existed): the collapsed node inherits the union of both nodes'
    # edges, so it — and transitively its predecessors — must be
    # re-refined rather than carried.
    carried: dict[NodeId, Color] = previous.as_dict()
    collapsed: set[NodeId] = set()
    for node in changes.removed_nodes:
        carried.pop(node, None)
    if renames:
        moves: list[tuple[NodeId, Color]] = []
        for old, new in renames.items():
            color = carried.pop(old, None)
            if color is not None:
                moves.append((new, color))
        for new, color in moves:
            if new in carried:
                collapsed.add(new)
            carried[new] = color
    added = {node for node, _ in changes.added_nodes}
    if carried.keys() | added != labels.keys() or not added.isdisjoint(carried):
        raise PartitionError(
            "delta does not connect the previous partition to the graph: "
            "node sets disagree after applying renames/removals/insertions"
        )
    subset_nodes = set(subset) if subset is not None else set(labels.keys())
    if interner is None:
        interner = ColorInterner()
        verbatim = False
    else:
        # Verbatim carry is sound exactly when every previous color is an
        # index into this interner (the chain contract); anything foreign
        # is re-wrapped instead, which is always sound because every
        # output color is then minted from a namespaced key.
        limit = len(interner)
        verbatim = all(0 <= color < limit for color in carried.values())

    # 2. Precondition: previous non-subset colors must be label-grounded
    # (color <-> label bijection), because step 4 reseeds them wholesale
    # from labels.  A hybrid base violates this and is rejected here.
    label_of_color: dict[Color, object] = {}
    color_of_label: dict[object, Color] = {}
    for node, label in labels.items():
        if node in subset_nodes:
            continue
        color = carried.get(node)
        if color is None:
            continue  # an inserted non-subset node has no previous color
        if (
            label_of_color.setdefault(color, label) != label
            or color_of_label.setdefault(label, color) != color
        ):
            raise PartitionError(
                "previous partition's non-subset classes are not grouped by "
                "label (a hybrid base, for example); maintenance cannot "
                "reseed them — fall back to batch refinement"
            )

    # 3. Directly changed nodes and their predecessor closure.
    touched: set[NodeId] = set(added) | collapsed
    for edge in changes.added_edges:
        touched.add(edge[0])
    for edge in changes.removed_edges:
        image = renames.get(edge[0], edge[0])
        if image in carried:
            touched.add(image)
    for _, new, label in changes.renamed:
        # A renamed blank keeps the blank label: pure key substitution.
        # Everything else may have changed label, so its seed color (and
        # hence every predecessor's signature) may differ.
        if not is_blank(label):
            touched.add(new)
    touched &= labels.keys()
    occurrences = graph.occurrence_index()
    affected: set[NodeId] = set()
    frontier = list(touched)
    while frontier:
        node = frontier.pop()
        if node in affected:
            continue
        affected.add(node)
        for predecessor in occurrences.get(node, ()):
            if predecessor not in affected:
                frontier.append(predecessor)
    refine_seed = affected & subset_nodes

    # 4. Seed the worklist coloring.  Verbatim mode touches O(closure +
    # insertions) entries: untouched nodes keep their previous colors as
    # is (same interner, no collisions possible), closure members reset
    # to their initial (label) class, inserted non-subset nodes join the
    # carried class of their label.  Re-wrap mode rebuilds the coloring —
    # non-subset nodes by label, kept subset classes wrapped 1:1 — so a
    # foreign previous partition can never collide with minted colors.
    epoch = next(_EPOCHS)
    reset_cache: dict[object, Color] = {}

    def reset_color(label: object) -> Color:
        color = reset_cache.get(label)
        if color is None:
            color = interner.intern(("reset", epoch, interner.label_color(label)))
            reset_cache[label] = color
        return color

    kept = 0
    if verbatim:
        colors = carried
        for node in refine_seed:
            colors[node] = reset_color(labels[node])
        entered_cache: dict[object, Color] = {}
        for node in added:
            if node in subset_nodes:
                continue  # inserted subset nodes are touched, hence reset
            label = labels[node]
            existing = color_of_label.get(label)
            if existing is not None:
                colors[node] = existing
                continue
            # A label new to the graph gets an epoch-fresh color, NOT the
            # raw label color: a node renamed in an earlier step still
            # carries its stale ("label", old) int verbatim, and minting
            # label colors here could collide with exactly those.
            color = entered_cache.get(label)
            if color is None:
                color = interner.intern(("entered", epoch, label))
                entered_cache[label] = color
            colors[node] = color
        kept = len(subset_nodes) - len(refine_seed)
        # Mixed-class guard (the worklist below runs with seed_closed and
        # skips its own purity scan): a carried subset class must not
        # share a color with any non-subset node.  Reset colors are
        # epoch-fresh, so only kept carried colors can offend.
        if kept and not label_of_color.keys().isdisjoint(
            colors[node] for node in subset_nodes if node not in refine_seed
        ):
            raise PartitionError(
                "previous partition mixes subset and non-subset nodes "
                "in one class; fall back to batch refinement"
            )
    else:
        colors = {}
        kept_cache: dict[Color, Color] = {}
        for node, label in labels.items():
            if node not in subset_nodes:
                colors[node] = interner.label_color(label)
            elif node in refine_seed:
                colors[node] = reset_color(label)
            else:
                carried_color = carried[node]
                if carried_color in label_of_color:
                    raise PartitionError(
                        "previous partition mixes subset and non-subset nodes "
                        "in one class; fall back to batch refinement"
                    )
                color = kept_cache.get(carried_color)
                if color is None:
                    color = interner.intern(("kept", epoch, carried_color))
                    kept_cache[carried_color] = color
                colors[node] = color
                kept += 1
    if stats is not None:
        stats.touched = len(touched)
        stats.affected = len(affected)
        stats.refined = len(refine_seed)
        stats.kept = kept

    # 5. Dirty-seeded worklist refinement: only the closure is examined.
    # The seed is predecessor-closed by construction and reset colors are
    # epoch-fresh (dirty classes are pure), so the worklist may build its
    # member map from the seed alone (seed_closed).
    refined = incremental_refine_fixpoint(
        graph,
        Partition(colors),
        subset_nodes,
        interner,
        dirty=refine_seed,
        seed_closed=True,
    )

    # 6. Coarsening: merge classes the coarsest refinement cannot keep
    # apart.  When nothing inside the subset was affected, the previous
    # classes are exact (no cone changed), so the pass is skipped — the
    # pure-rename fast path.
    if refine_seed:
        # The "cyclic" sentinel records a cone cycle seen earlier in the
        # chain: re-attempting canonization would walk deep into the
        # graph every step only to rediscover it.
        if (
            canon_cache is not None
            and verbatim
            and "cyclic" not in canon_cache
        ):
            try:
                refined, merged = _merge_by_canon(
                    graph, refined, subset_nodes, interner, epoch, canon_cache
                )
            except _CanonCycle:
                # Cyclic cones have no canonical tree form.  The cache
                # keeps its (still true) entries; the full quotient pass
                # decides this step and the rest of the chain.
                canon_cache["cyclic"] = True
                refined, merged = _merge_coarsened(
                    graph, refined, subset_nodes, interner, epoch
                )
        else:
            refined, merged = _merge_coarsened(
                graph, refined, subset_nodes, interner, epoch
            )
        if stats is not None:
            stats.merged_classes = merged
    return refined


class _CanonCycle(Exception):
    """Raised when the class quotient is cyclic (no canonical tree form)."""


def _merge_by_canon(
    graph: TripleGraph,
    partition: Partition,
    subset_nodes: set[NodeId],
    interner: ColorInterner,
    epoch: int,
    canon_cache: dict[Color, int],
) -> tuple[Partition, int]:
    """Merge bisimilar stable classes by canonical cone form.

    Computes, bottom-up over the (acyclic) class quotient, a
    content-addressed canonical form for every class: the interned key
    ``("canon", label, {(atom(p), atom(o))})`` where subset endpoints
    contribute their class's canonical form and frozen endpoints their
    (label-grounded) color, negated to keep the two namespaces apart.
    On acyclic cones two nodes are bisimilar iff their canonical forms
    coincide, so classes sharing a form merge — the same result as the
    quotient re-refinement of :func:`_merge_coarsened`.

    The walk is over concrete *nodes*, not quotient classes: the
    quotient of an acyclic graph can itself be cyclic, which would force
    a spurious fallback.  A stable partition is a bisimulation, so every
    member of a class has the same canonical form and one finished
    member canonizes its whole class.

    *canon_cache* (class color → canonical form) persists across a
    chain's steps: a class carried untouched has an unchanged concrete
    cone, hence an unchanged canonical form, so only the re-refined
    region is canonized — O(closure) instead of O(classes).  Raises
    :class:`_CanonCycle` when a cone is cyclic (canonical tree forms do
    not exist); completed cache entries remain valid.
    """
    part = partition.as_dict()
    labels = graph.labels()
    reps: dict[Color, NodeId] = {}
    for node in subset_nodes:
        reps.setdefault(part[node], node)

    node_canon: dict[NodeId, int] = {}
    in_progress: set[NodeId] = set()
    for root_color, root in reps.items():
        if root_color in canon_cache:
            continue
        stack = [root]
        while stack:
            v = stack[-1]
            cv = part[v]
            if cv in canon_cache or v in node_canon:
                # Possibly resolved by a classmate finishing first.
                in_progress.discard(v)
                stack.pop()
                continue
            if v in in_progress:
                # Second visit: every successor is resolved now.
                entries = set()
                for p, o in graph.out(v):
                    if p in subset_nodes:
                        pa = canon_cache.get(part[p])
                        if pa is None:
                            pa = node_canon[p]
                    else:
                        pa = -part[p] - 1
                    if o in subset_nodes:
                        oa = canon_cache.get(part[o])
                        if oa is None:
                            oa = node_canon[o]
                    else:
                        oa = -part[o] - 1
                    entries.add((pa, oa))
                value = interner.intern(
                    ("canon", labels[v], frozenset(entries))
                )
                node_canon[v] = value
                canon_cache[cv] = value
                in_progress.discard(v)
                stack.pop()
                continue
            in_progress.add(v)
            for p, o in graph.out(v):
                for endpoint in (p, o):
                    if (
                        endpoint in subset_nodes
                        and part[endpoint] not in canon_cache
                        and endpoint not in node_canon
                    ):
                        # Everything above an unresolved in-progress node
                        # on the stack is reachable from it, so hitting
                        # one again means a genuine cycle.
                        if endpoint in in_progress:
                            raise _CanonCycle()
                        stack.append(endpoint)

    buckets: dict[int, list[Color]] = {}
    for color in reps:
        buckets.setdefault(canon_cache[color], []).append(color)
    if len(buckets) == len(reps):
        return partition, 0
    merge_to: dict[Color, Color] = {}
    merged = 0
    for canon, colors_list in buckets.items():
        if len(colors_list) <= 1:
            continue
        merged += len(colors_list) - 1
        new_color = interner.intern(("canon-merged", epoch, canon))
        for color in colors_list:
            merge_to[color] = new_color
        canon_cache[new_color] = canon
    updates = {
        node: merge_to[part[node]] for node in subset_nodes if part[node] in merge_to
    }
    return partition.with_colors(updates), merged


def _merge_coarsened(
    graph: TripleGraph,
    partition: Partition,
    subset_nodes: set[NodeId],
    interner: ColorInterner,
    epoch: int,
) -> tuple[Partition, int]:
    """Merge stable classes that the coarsest refinement does not split.

    Quotient the stable partition to class level (one representative per
    class — all members share the class-level signature at a fixpoint)
    and re-refine the quotient from the initial label grouping against
    the frozen non-subset colors.  Classes reaching the same quotient
    fixpoint color are bisimilar and merge.
    """
    part = partition.as_dict()
    representatives: dict[Color, NodeId] = {}
    for node in subset_nodes:
        representatives.setdefault(part[node], node)
    count = len(representatives)
    if count <= 1:
        return partition, 0
    class_colors = list(representatives)
    index_of = {color: i for i, color in enumerate(class_colors)}
    labels = graph.labels()
    # Resolve each representative's neighborhood ONCE: a subset endpoint
    # becomes an index into the evolving quotient grouping, a non-subset
    # endpoint stays its frozen color (index -1).  The quotient is then
    # re-refined split-first with a worklist — one full pass over the
    # classes, churn-only afterwards — using plain local group ids;
    # frozen colors are interner ints (>= 0), evolving groups are encoded
    # as negative ints, so signature pairs can never confuse the two.
    adjacency: list[tuple[tuple[int, Color, int, Color], ...]] = []
    predecessors: list[set[int]] = [set() for _ in range(count)]
    for i, c in enumerate(class_colors):
        entries = set()
        for p, o in graph.out(representatives[c]):
            p_color = part[p]
            o_color = part[o]
            p_index = index_of[p_color] if p in subset_nodes else -1
            o_index = index_of[o_color] if o in subset_nodes else -1
            entries.add((p_index, p_color, o_index, o_color))
            if p_index >= 0:
                predecessors[p_index].add(i)
            if o_index >= 0:
                predecessors[o_index].add(i)
        adjacency.append(tuple(entries))

    group: list[int] = [0] * count
    members: dict[int, list[int]] = {}
    group_of_label: dict[object, int] = {}
    next_group = 0
    for i, c in enumerate(class_colors):
        label = labels[representatives[c]]
        gid = group_of_label.get(label)
        if gid is None:
            gid = next_group
            next_group += 1
            group_of_label[label] = gid
        group[i] = gid
        members.setdefault(gid, []).append(i)

    def signature(i: int) -> tuple:
        return tuple(
            sorted(
                {
                    (
                        (-group[p_index] - 1) if p_index >= 0 else p_color,
                        (-group[o_index] - 1) if o_index >= 0 else o_color,
                    )
                    for p_index, p_color, o_index, o_color in adjacency[i]
                }
            )
        )

    dirty = set(range(count))
    while dirty:
        affected_groups = {group[i] for i in dirty}
        moved: list[int] = []
        for gid in affected_groups:
            mem = members[gid]
            if len(mem) <= 1:
                continue
            buckets: dict[tuple, list[int]] = {}
            for i in mem:
                buckets.setdefault(signature(i), []).append(i)
            if len(buckets) <= 1:
                continue
            ordered = sorted(buckets.items(), key=lambda item: item[0])
            members[gid] = ordered[0][1]
            for __, bucket in ordered[1:]:
                next_group += 1
                members[next_group] = bucket
                for i in bucket:
                    group[i] = next_group
                    moved.append(i)
        dirty = set()
        for i in moved:
            dirty.update(predecessors[i])

    group_classes: dict[int, list[int]] = {}
    for i in range(count):
        group_classes.setdefault(group[i], []).append(i)
    merged = count - len(group_classes)
    if merged == 0:
        return partition, 0
    # Only classes that actually merge are recolored; unmerged classes
    # keep their colors (which keeps any cross-step canonical-form cache
    # entries for them valid after a cycle fallback).
    final: dict[Color, Color] = {}
    for gid, indices in group_classes.items():
        if len(indices) <= 1:
            continue
        color = interner.intern(("merged", epoch, gid))
        for i in indices:
            final[class_colors[i]] = color
    updates = {
        node: final[part[node]] for node in subset_nodes if part[node] in final
    }
    return partition.with_colors(updates), merged


def maintain_or_batch(
    graph: TripleGraph,
    previous: Partition,
    changes: VersionChanges,
    subset: Collection[NodeId] | None = None,
    interner: ColorInterner | None = None,
    stats: MaintenanceStats | None = None,
    canon_cache: dict[Color, int] | None = None,
) -> Partition:
    """Maintain when the precondition holds, else refine from scratch.

    The documented fallback: partitions maintenance cannot connect to
    the graph (or whose non-subset classes are not label-grounded, like
    a hybrid base) are recomputed with batch refinement — never silently
    diverged from.
    """
    try:
        return maintain_fixpoint(
            graph, previous, changes, subset, interner, stats, canon_cache
        )
    except PartitionError:
        if stats is not None:
            stats.fell_back = True
        # Falling back INTO the caller's interner (when given) re-anchors
        # a chain: the batch result's colors are covered by it, so the
        # next step maintains verbatim again instead of cascading
        # fallbacks for the rest of the chain.  The canonical-form cache
        # must not survive the re-anchor: batch refinement may hand an
        # old color (e.g. the initial blank color) to a class with a
        # different cone, which would alias a cached form.
        if canon_cache is not None:
            canon_cache.clear()
        if interner is None:
            interner = ColorInterner()
        return bisim_refine_fixpoint(
            graph, label_partition(graph, interner), subset, interner
        )
