"""All-pairs version matrices (paper Figures 10–11).

The EFO experiments evaluate an alignment measure between *every* pair of
versions, yielding a 10×10 matrix whose diagonal holds self-alignments.
:func:`pairwise_matrix` drives that computation; the renderer lives in
:mod:`repro.evaluation.reporting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..model.rdf import RDFGraph
from ..model.union import CombinedGraph, combine

#: Computes one matrix cell from a combined version pair.
CellFunction = Callable[[CombinedGraph], float]


@dataclass
class VersionMatrix:
    """A dense matrix over version pairs (source column, target row)."""

    size: int
    values: dict[tuple[int, int], float] = field(default_factory=dict)

    def __getitem__(self, pair: tuple[int, int]) -> float:
        return self.values[pair]

    def __setitem__(self, pair: tuple[int, int], value: float) -> None:
        self.values[pair] = value

    def diagonal(self) -> list[float]:
        return [self.values[(i, i)] for i in range(self.size)]

    def row(self, target: int) -> list[float]:
        return [self.values[(source, target)] for source in range(self.size)]

    def max_value(self) -> float:
        return max(self.values.values()) if self.values else 0.0

    def min_value(self) -> float:
        return min(self.values.values()) if self.values else 0.0

    def off_diagonal_pairs(self) -> list[tuple[int, int]]:
        return [pair for pair in self.values if pair[0] != pair[1]]


def pairwise_matrix(
    graphs: Sequence[RDFGraph],
    cell: CellFunction,
    symmetric_fill: bool = False,
    jobs: int = 1,
) -> VersionMatrix:
    """Evaluate *cell* on every version pair.

    ``symmetric_fill=True`` computes only ``source ≤ target`` and mirrors
    the value — a time saver for measures that are symmetric by definition.
    Self-alignments combine a version with an identical copy of itself
    (the side tagging keeps the two occurrences disjoint).

    ``jobs`` shards the cells over that many worker processes (see
    :mod:`repro.experiments.parallel`); the merge order is deterministic,
    so the resulting matrix is identical to a serial run.  *cell* must
    then be a pure function of its union (it runs in a forked worker).
    """
    size = len(graphs)
    matrix = VersionMatrix(size=size)
    pairs = [
        (source, target)
        for source in range(size)
        for target in range(size)
        if not (symmetric_fill and source > target)
    ]

    def compute(pair: tuple[int, int]) -> float:
        source, target = pair
        return cell(combine(graphs[source], graphs[target]))

    from ..experiments.parallel import run_sharded

    for pair, value in zip(pairs, run_sharded(compute, pairs, jobs=jobs)):
        matrix[pair] = value
    if symmetric_fill:
        for source in range(size):
            for target in range(source):
                matrix[(source, target)] = matrix[(target, source)]
    return matrix


def difference_matrix(first: VersionMatrix, second: VersionMatrix) -> VersionMatrix:
    """Cell-wise ``first − second`` (Figure 11 subtracts method baselines)."""
    if first.size != second.size:
        raise ValueError("matrices must have the same size")
    result = VersionMatrix(size=first.size)
    for pair, value in first.values.items():
        result[pair] = value - second.values[pair]
    return result


def gradient_violations(matrix: VersionMatrix, tolerance: float = 0.0) -> list[tuple]:
    """Pairs violating the expected away-from-diagonal descent.

    The paper observes "an expected descending gradient from the diagonal":
    aligning versions further apart aligns fewer edges.  Returns the pairs
    ``(source, target)`` where moving one step further from the diagonal
    *increases* the value by more than *tolerance* — the EFO experiment
    reports these (version 3's blank fluctuation produces a few).
    """
    violations: list[tuple] = []
    for (source, target), value in matrix.values.items():
        if source == target:
            continue
        step = 1 if source < target else -1
        closer = (source + step, target)
        if closer in matrix.values and matrix.values[closer] + tolerance < value:
            violations.append((source, target))
    return violations
