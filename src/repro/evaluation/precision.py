"""Alignment precision against ground truth (paper Figure 14).

The ground truth aligns a node to at most one other node, while partition
alignments may align it to several; the paper therefore classifies every
node into exactly one of four categories:

* **exact** — aligned to the same set of nodes as the ground truth
  (including "both empty" for nodes correctly left unaligned);
* **inclusive** — aligned to a set that *properly includes* the node the
  ground truth indicates;
* **missing** — aligned to a set that does not include the indicated node;
* **false** — aligned to a nonempty set although the ground truth aligns
  the node to nothing (e.g. a freshly inserted entity).

The four categories are exhaustive and mutually exclusive; we classify the
nodes of both versions (each node's partner set looks across to the other
version).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.ground_truth import GroundTruth
from ..model.graph import NodeId
from ..model.union import SOURCE, CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition


@dataclass(frozen=True)
class PrecisionCounts:
    """Node counts per category, plus helpers for reporting."""

    exact: int
    inclusive: int
    missing: int
    false: int

    @property
    def total(self) -> int:
        return self.exact + self.inclusive + self.missing + self.false

    def fraction(self, category: str) -> float:
        count = getattr(self, category)
        return count / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "exact": self.exact,
            "inclusive": self.inclusive,
            "missing": self.missing,
            "false": self.false,
        }

    def __add__(self, other: "PrecisionCounts") -> "PrecisionCounts":
        return PrecisionCounts(
            exact=self.exact + other.exact,
            inclusive=self.inclusive + other.inclusive,
            missing=self.missing + other.missing,
            false=self.false + other.false,
        )


def classify_node(
    alignment: PartitionAlignment,
    node: NodeId,
    truth_partner: NodeId | None,
) -> str:
    """The category of one node given its ground-truth partner (or None)."""
    partners = alignment.partners(node)
    if truth_partner is None:
        return "false" if partners else "exact"
    if partners == {truth_partner}:
        return "exact"
    if truth_partner in partners:
        return "inclusive"
    return "missing"


def precision_counts(
    graph: CombinedGraph, partition: Partition, truth: GroundTruth
) -> PrecisionCounts:
    """Classify every node of both versions (Figure 14's measure)."""
    alignment = PartitionAlignment(graph, partition)
    counts = {"exact": 0, "inclusive": 0, "missing": 0, "false": 0}
    for node in graph.nodes():
        term = graph.original(node)
        if graph.side(node) == SOURCE:
            partner_term = truth.partner_of_source(term)
            partner = (2, partner_term) if partner_term is not None else None
            if partner is not None and partner not in graph.target_nodes:
                partner = None
        else:
            partner_term = truth.partner_of_target(term)
            partner = (1, partner_term) if partner_term is not None else None
            if partner is not None and partner not in graph.source_nodes:
                partner = None
        counts[classify_node(alignment, node, partner)] += 1
    return PrecisionCounts(**counts)
