"""Alignment quality metrics (paper Section 5).

Two counting conventions are used by the paper's figures:

* **aligned edges** (EFO, Figures 10–11): an edge is identified by the
  color triple of its endpoints under the alignment partition; "edges
  using precisely the same identifiers are counted precisely once", so the
  ratio is ``|T1 ∩ T2| / |T1 ∪ T2|`` over the per-side sets of distinct
  color triples — a complete alignment (e.g. a self-alignment) scores 1;
* **aligned nodes, deduplicated** (GtoPdb, Figure 13): each partition
  class containing nodes of both versions stands for one aligned entity;
  ``Total`` adds the unaligned nodes of either side, so that under a
  perfect 1-to-1 alignment ``Total = |N1| + |N2| − aligned``.
"""

from __future__ import annotations

from ..datasets.ground_truth import GroundTruth
from ..model.union import CombinedGraph
from ..partition.alignment import PartitionAlignment
from ..partition.coloring import Partition
from ..partition.interner import Color


def edge_color_triples(
    graph: CombinedGraph, partition: Partition, side_nodes: frozenset
) -> set[tuple[Color, Color, Color]]:
    """The distinct color triples of one side's edges."""
    triples: set[tuple[Color, Color, Color]] = set()
    for subject, predicate, obj in graph.edges():
        if subject in side_nodes:
            triples.add((partition[subject], partition[predicate], partition[obj]))
    return triples


def aligned_edge_counts(
    graph: CombinedGraph, partition: Partition
) -> tuple[int, int]:
    """``(|T1 ∩ T2|, |T1 ∪ T2|)`` over distinct edge color triples."""
    source_triples = edge_color_triples(graph, partition, graph.source_nodes)
    target_triples = edge_color_triples(graph, partition, graph.target_nodes)
    return (
        len(source_triples & target_triples),
        len(source_triples | target_triples),
    )


def aligned_edge_ratio(graph: CombinedGraph, partition: Partition) -> float:
    """Figure 10's measure: aligned edges over total distinct edges."""
    aligned, total = aligned_edge_counts(graph, partition)
    if total == 0:
        return 1.0
    return aligned / total


def aligned_edge_count(graph: CombinedGraph, partition: Partition) -> int:
    """Figure 11's measure: the absolute number of aligned edges."""
    return aligned_edge_counts(graph, partition)[0]


def matched_entity_count(graph: CombinedGraph, partition: Partition) -> int:
    """Figure 13's per-method count: classes matching both versions."""
    return PartitionAlignment(graph, partition).matched_class_count()


def ground_truth_entity_count(graph: CombinedGraph, truth: GroundTruth) -> int:
    """Figure 13's ``GtoPdb`` series: persistent entities present in both."""
    return len(truth.combined_pairs(graph))


def total_entity_count(graph: CombinedGraph, truth: GroundTruth) -> int:
    """Figure 13's ``Total``: deduplicated node count of the version pair."""
    shared = ground_truth_entity_count(graph, truth)
    return len(graph.source_nodes) + len(graph.target_nodes) - shared


def recall_against_truth(
    graph: CombinedGraph, partition: Partition, truth: GroundTruth
) -> float:
    """Fraction of ground-truth pairs the alignment reproduces."""
    pairs = truth.combined_pairs(graph)
    if not pairs:
        return 1.0
    found = sum(
        1 for source, target in pairs if partition[source] == partition[target]
    )
    return found / len(pairs)
