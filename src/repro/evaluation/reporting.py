"""Terminal rendering of experiment results.

The paper presents its evaluation as heat-map matrices, stacked bars and
line plots; in a library these become deterministic ASCII renderings that
the experiment runners print and the benchmark harness writes next to its
timing output.  Everything here is pure string formatting.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .matrices import VersionMatrix

_SHADES = " .:-=+*#%@"


def format_number(value: Any, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value and abs(value) < 10 ** -precision:
            return f"{value:.1e}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 3
) -> str:
    """A fixed-width table with a header rule."""
    cells = [[format_number(value, precision) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(v).rjust(width) for v, width in zip(row, widths))

    lines = [fmt([str(h) for h in headers]), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_matrix(
    matrix: VersionMatrix, precision: int = 2, label: str = "tgt\\src"
) -> str:
    """A numeric matrix: rows are targets, columns are sources (paper axes)."""
    headers = [label] + [str(i + 1) for i in range(matrix.size)]
    rows = []
    for target in range(matrix.size):
        rows.append([str(target + 1)] + [
            format_number(matrix[(source, target)], precision)
            for source in range(matrix.size)
        ])
    return render_table(headers, rows, precision)


def render_heatmap(matrix: VersionMatrix) -> str:
    """A character heat map normalized over the matrix's value range."""
    low, high = matrix.min_value(), matrix.max_value()
    span = (high - low) or 1.0
    lines = ["    " + " ".join(str(i + 1).rjust(2) for i in range(matrix.size))]
    for target in range(matrix.size):
        shades = []
        for source in range(matrix.size):
            fraction = (matrix[(source, target)] - low) / span
            index = min(int(fraction * (len(_SHADES) - 1)), len(_SHADES) - 1)
            shades.append(" " + _SHADES[index])
        lines.append(str(target + 1).rjust(3) + " " + " ".join(shades))
    return "\n".join(lines)


def render_bars(
    series: Mapping[str, float], width: int = 40, precision: int = 3
) -> str:
    """Horizontal bars scaled to the largest value."""
    if not series:
        return "(empty)"
    peak = max(series.values()) or 1.0
    name_width = max(len(name) for name in series)
    lines = []
    for name, value in series.items():
        bar = "#" * max(1 if value > 0 else 0, int(value / peak * width))
        lines.append(
            f"{name.ljust(name_width)} |{bar.ljust(width)}| {format_number(value, precision)}"
        )
    return "\n".join(lines)


def render_stacked_fractions(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    categories: Sequence[str],
    width: int = 50,
    symbols: str = "#+.x",
) -> str:
    """Stacked 100 % bars (Figure 14/15's exact/inclusive/false/missing).

    Each row is ``(label, {category: count})``; the bar splits *width*
    characters proportionally to the category counts.
    """
    legend = "  ".join(
        f"{symbol}={category}" for symbol, category in zip(symbols, categories)
    )
    label_width = max((len(label) for label, __ in rows), default=0)
    lines = [legend]
    for label, counts in rows:
        total = sum(counts.get(category, 0) for category in categories) or 1
        bar = ""
        for symbol, category in zip(symbols, categories):
            share = counts.get(category, 0) / total
            bar += symbol * round(share * width)
        bar = bar[:width].ljust(width)
        summary = " ".join(
            f"{category}={counts.get(category, 0)}" for category in categories
        )
        lines.append(f"{label.ljust(label_width)} |{bar}| {summary}")
    return "\n".join(lines)
