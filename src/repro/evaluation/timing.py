"""Wall-clock measurement harness (paper Figure 16).

Thin, dependency-free timing utilities: the scalability experiment times
each alignment method on each version pair and reports seconds alongside
the input sizes.  ``pytest-benchmark`` handles the statistical micro
benchmarks; this module covers the one-shot "how long did the experiment
take" measurements the paper plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class TimedResult:
    """A value together with the seconds it took to produce."""

    seconds: float
    value: Any


def time_call(function: Callable[[], Any]) -> TimedResult:
    """Run *function* once under a monotonic clock."""
    start = time.perf_counter()
    value = function()
    return TimedResult(seconds=time.perf_counter() - start, value=value)


@dataclass
class StopwatchSeries:
    """Named timing series over versions (method → version → seconds)."""

    series: dict[str, dict[int, float]] = field(default_factory=dict)

    def record(self, name: str, version: int, seconds: float) -> None:
        self.series.setdefault(name, {})[version] = seconds

    def measure(self, name: str, version: int, function: Callable[[], Any]) -> Any:
        timed = time_call(function)
        self.record(name, version, timed.seconds)
        return timed.value

    def names(self) -> list[str]:
        return sorted(self.series)

    def versions(self) -> list[int]:
        versions: set[int] = set()
        for by_version in self.series.values():
            versions.update(by_version)
        return sorted(versions)

    def get(self, name: str, version: int) -> float:
        return self.series[name][version]

    def as_rows(self) -> list[dict[str, Any]]:
        """One row per version with a column per series."""
        rows = []
        for version in self.versions():
            row: dict[str, Any] = {"version": version}
            for name in self.names():
                row[name] = self.series[name].get(version)
            rows.append(row)
        return rows
