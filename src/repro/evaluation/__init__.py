"""Evaluation metrics, precision classes, version matrices, timing, reporting."""

from .matrices import (
    VersionMatrix,
    difference_matrix,
    gradient_violations,
    pairwise_matrix,
)
from .metrics import (
    aligned_edge_count,
    aligned_edge_counts,
    aligned_edge_ratio,
    edge_color_triples,
    ground_truth_entity_count,
    matched_entity_count,
    recall_against_truth,
    total_entity_count,
)
from .precision import PrecisionCounts, classify_node, precision_counts
from .reporting import (
    format_number,
    render_bars,
    render_heatmap,
    render_matrix,
    render_stacked_fractions,
    render_table,
)
from .timing import StopwatchSeries, TimedResult, time_call

__all__ = [
    "PrecisionCounts",
    "StopwatchSeries",
    "TimedResult",
    "VersionMatrix",
    "aligned_edge_count",
    "aligned_edge_counts",
    "aligned_edge_ratio",
    "classify_node",
    "difference_matrix",
    "edge_color_triples",
    "format_number",
    "gradient_violations",
    "ground_truth_entity_count",
    "matched_entity_count",
    "pairwise_matrix",
    "precision_counts",
    "recall_against_truth",
    "render_bars",
    "render_heatmap",
    "render_matrix",
    "render_stacked_fractions",
    "render_table",
    "time_call",
    "total_entity_count",
]
