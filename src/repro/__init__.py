"""repro — RDF graph alignment with bisimulation.

A from-scratch reproduction of Buneman & Staworko, *RDF Graph Alignment
with Bisimulation*, PVLDB 9(12), 2016.  See README.md for a tour and
DESIGN.md for the system inventory and experiment index.

Public API highlights:

* :mod:`repro.align` — the session API: :class:`repro.Aligner`,
  :class:`repro.AlignConfig`, the method registry and serializable
  :class:`repro.AlignmentReport` results,
* :func:`repro.align_versions` — the legacy one-shot facade,
* :mod:`repro.model` — labels, triple graphs, RDF graphs, disjoint unions,
* :mod:`repro.core` — bisimulation refinement, Trivial/Deblank/Hybrid,
* :mod:`repro.similarity` — σEdit, weighted partitions, Overlap,
* :mod:`repro.datasets` — synthetic evolving datasets with ground truth,
* :mod:`repro.experiments` — one module per paper figure (9–16).
"""

from .align import (
    AlignConfig,
    Aligner,
    AlignmentReport,
    MethodSpec,
    register_method,
)
from .api import AlignmentMethod, AlignmentResult, align_many, align_versions
from .exceptions import (
    AlignError,
    AlignmentError,
    ConfigError,
    CorruptStoreError,
    ExperimentError,
    GraphError,
    ParseError,
    PartitionError,
    RDFWellFormednessError,
    ReportError,
    ReproError,
    SchemaError,
    ThresholdError,
    TransientError,
    UnknownEngineError,
    UnknownMethodError,
    WorkerCrashError,
)
from .model import (
    BLANK,
    BlankNode,
    CombinedGraph,
    Literal,
    RDFGraph,
    TripleGraph,
    URI,
    blank,
    combine,
    lit,
    uri,
)
from .oplus import oplus

__version__ = "1.0.0"

__all__ = [
    "AlignConfig",
    "AlignError",
    "Aligner",
    "AlignmentError",
    "AlignmentMethod",
    "AlignmentReport",
    "AlignmentResult",
    "BLANK",
    "ConfigError",
    "CorruptStoreError",
    "MethodSpec",
    "ReportError",
    "ThresholdError",
    "TransientError",
    "WorkerCrashError",
    "UnknownEngineError",
    "UnknownMethodError",
    "register_method",
    "BlankNode",
    "CombinedGraph",
    "ExperimentError",
    "GraphError",
    "Literal",
    "ParseError",
    "PartitionError",
    "RDFGraph",
    "RDFWellFormednessError",
    "ReproError",
    "SchemaError",
    "TripleGraph",
    "URI",
    "__version__",
    "align_many",
    "align_versions",
    "blank",
    "combine",
    "lit",
    "oplus",
    "uri",
]
