"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires ``wheel`` for PEP 517 editable builds; fully
offline environments that lack it can instead run::

    python setup.py develop

which produces an equivalent editable install through classic setuptools.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
