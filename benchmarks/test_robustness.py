"""The robustness harness must be free when nothing fails.

One gated measurement: ``robustness/retry_overhead`` compares the
serial cell runner — which now routes every cell through the fault
hooks (``faults.ACTIVE is None`` guards), builds a
:class:`~repro.robustness.RetryPolicy` from the config, and carries the
recovery plumbing — against the bare ``[cell(store, config, item) for
item in items]`` loop it replaces.  Both paths run over a *fresh* store
(no memoized artifacts carry over), so the comparison is real work vs
real work and the delta is exactly the harness's clean-path cost.

Gate: ≤ 5 % overhead.  The measurement is appended to
``results/bench.json`` with the baseline timing so trajectory tooling
can tell noise from regression.
"""

from __future__ import annotations

import json
import time

from repro.align import AlignConfig
from repro.datasets import EFOGenerator
from repro.experiments.cells import edge_ratio_cell
from repro.experiments.parallel import run_store_cells
from repro.experiments.store import VersionStore
from repro.robustness import active_plan

from .conftest import record_bench

SCALE, SEED, VERSIONS = 1.5, 777, 8
MAX_OVERHEAD = 0.05

PAIRS = [
    (source, target)
    for source in range(VERSIONS)
    for target in range(source, VERSIONS)
]


def _fresh_store() -> VersionStore:
    """A cold store per measurement: every cell recomputes its
    refinement from scratch, so neither path inherits warm caches."""
    generator = EFOGenerator.shared(scale=SCALE, seed=SEED, versions=VERSIONS)
    store = VersionStore(generator)
    store.prepare(summaries=True)
    return store


def _timed(function) -> tuple[float, list]:
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def _bare() -> tuple[float, list]:
    store = _fresh_store()
    config = AlignConfig()
    return _timed(
        lambda: [edge_ratio_cell(store, config, pair) for pair in PAIRS]
    )


def _guarded() -> tuple[float, list]:
    store = _fresh_store()
    return _timed(
        lambda: run_store_cells(
            store, edge_ratio_cell, PAIRS, jobs=1, config=AlignConfig()
        )
    )


def test_retry_overhead_gate(results_dir):
    """Hooks + retry plumbing cost ≤ 5 % on the fault-free serial path."""
    assert active_plan() is None, "a fault plan leaked into the bench"

    bare_seconds, bare_rows = _bare()
    guarded_seconds, guarded_rows = _guarded()

    # Correctness before speed: the harnessed runner returns exactly the
    # bare loop's numbers.
    assert json.dumps(guarded_rows, sort_keys=True) == json.dumps(
        bare_rows, sort_keys=True
    )

    overhead = guarded_seconds / bare_seconds - 1.0
    if overhead > MAX_OVERHEAD:
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            bare_seconds = min(bare_seconds, _bare()[0])
            guarded_seconds = min(guarded_seconds, _guarded()[0])
        overhead = guarded_seconds / bare_seconds - 1.0

    report = "\n".join(
        [
            "Robustness harness clean-path overhead "
            f"(EFO {VERSIONS}x{VERSIONS} matrix @ scale {SCALE}, serial)",
            "",
            f"{'path':>28} {'seconds':>9}",
            f"{'bare cell loop':>28} {bare_seconds:>9.3f}",
            f"{'run_store_cells (hooks on)':>28} {guarded_seconds:>9.3f}",
            "",
            f"overhead: {overhead * 100:+.2f}% (gate: <= {MAX_OVERHEAD:.0%})",
        ]
    ) + "\n"
    (results_dir / "robustness_overhead.txt").write_text(
        report, encoding="utf-8"
    )
    print()
    print(report)

    record_bench(
        "robustness/retry_overhead",
        guarded_seconds,
        speedup=bare_seconds / guarded_seconds,
        baseline_seconds=bare_seconds,
    )

    assert overhead <= MAX_OVERHEAD, (
        f"clean-path robustness overhead is {overhead * 100:.2f}%, above "
        f"the {MAX_OVERHEAD:.0%} gate"
    )
