"""Batch execution: snapshot reuse + shared-memory fan-out.

Two workloads, two acceptance surfaces:

**Batch (store vs seed)** — the evaluation's bread and butter: the EFO
all-pairs matrices (a Figure-10-style trivial + deblank ratio grid *and*
a Figure-11-style deblank count grid — two figures sharing one dataset,
exactly the cross-figure redundancy the store eliminates) plus a
Figure-13-style consecutive-pair sweep (hybrid + overlap counts over a
GtoPdb chain).  Gates: snapshot reuse (store, jobs=1) is ≥ 1.3× over the
per-cell seed path, and ≥ 2× end to end.

**Shared-memory pool (jobs=N vs jobs=1)** — a scale-free synthetic
all-pairs matrix sized so the serial run takes ≥ 5 s, executed through
:func:`~repro.experiments.parallel.run_store_cells`: the parent
publishes the store once into named shm segments, persistent workers
attach by name, and only ``(cell, manifest, index)`` crosses the process
boundary.  Gates: results byte-identical at jobs ∈ {1, 2, 4}, no leaked
``/dev/shm`` segments, and — on machines with ≥ 4 usable CPUs — jobs=4
is ≥ 2× over jobs=1.  On smaller machines the ratio is recorded
(with the ``cpus`` context field) but not gated: a 1-CPU box cannot
honestly run four workers faster than one.

A summary table is written to ``results/parallel_runner.txt`` and every
measurement is appended to ``results/bench.json``.
"""

from __future__ import annotations

import json
import time

from repro.align import AlignConfig
from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.datasets import EFOGenerator, GtoPdbGenerator
from repro.evaluation.metrics import (
    aligned_edge_count,
    aligned_edge_ratio,
    matched_entity_count,
)
from repro.experiments.cells import method_counts_cell
from repro.experiments.parallel import (
    fork_available,
    run_sharded,
    run_store_cells,
    usable_cpus,
)
from repro.experiments.shm import list_segments, shm_available
from repro.experiments.store import GENERATOR_FAMILIES, VersionStore
from repro.model.union import combine
from repro.partition.interner import ColorInterner
from repro.similarity.overlap_alignment import overlap_partition

from .conftest import record_bench

EFO_SCALE, EFO_SEED, EFO_VERSIONS = 0.3, 777, 10
GTOPDB_SCALE, GTOPDB_SEED, GTOPDB_VERSIONS = 0.3, 7716, 4
THETA = 0.65

REQUIRED_SERIAL_SPEEDUP = 1.3
REQUIRED_END_TO_END_SPEEDUP = 2.0

#: The shm-pool workload: a scale-free synthetic history big enough that
#: the all-pairs hybrid+overlap matrix takes ≥ MIN_SERIAL_SECONDS
#: serially — the floor that makes the jobs=4 gate a statement about
#: sustained throughput rather than pool start-up noise.
SHM_FAMILY = "synthetic_scale_free"
SHM_SCALE, SHM_SEED, SHM_VERSIONS = 6.0, 300, 10
MIN_SERIAL_SECONDS = 5.0
REQUIRED_POOL_SPEEDUP = 2.0
POOL_GATE_CPUS = 4

REPORT_PATH = "parallel_runner.txt"


# ----------------------------------------------------------------------
# The seed (pre-batch) path, kept verbatim as the baseline
# ----------------------------------------------------------------------
def seed_path() -> tuple:
    """Per-cell rebuilds, exactly like the pre-VersionStore figures."""
    efo = EFOGenerator(scale=EFO_SCALE, seed=EFO_SEED, versions=EFO_VERSIONS)
    graphs = efo.graphs()
    matrix_rows = []
    for source in range(EFO_VERSIONS):
        for target in range(source, EFO_VERSIONS):
            # Figure-10-style cell: trivial + deblank ratios.
            union = combine(graphs[source], graphs[target])
            trivial_value = aligned_edge_ratio(
                union, trivial_partition(union, ColorInterner())
            )
            deblank_value = aligned_edge_ratio(
                union, deblank_partition(union, ColorInterner())
            )
            matrix_rows.append((source, target, trivial_value, deblank_value))
    count_rows = []
    for source in range(EFO_VERSIONS):
        for target in range(source, EFO_VERSIONS):
            # Figure-11-style cell: the absolute deblank count.  The seed
            # figures shared nothing, so the second figure re-built the
            # union and re-ran the deblank refinement on every pair.
            union = combine(graphs[source], graphs[target])
            count_rows.append(
                (
                    source,
                    target,
                    aligned_edge_count(
                        union, deblank_partition(union, ColorInterner())
                    ),
                )
            )

    gtopdb = GtoPdbGenerator(
        scale=GTOPDB_SCALE, seed=GTOPDB_SEED, versions=GTOPDB_VERSIONS
    )
    pair_rows = []
    for index in range(GTOPDB_VERSIONS - 1):
        union, _truth = gtopdb.combined(index, index + 1)
        interner = ColorInterner()
        hybrid = hybrid_partition(union, interner)
        overlap = overlap_partition(
            union, theta=THETA, interner=interner, base=hybrid
        )
        pair_rows.append(
            (
                index,
                matched_entity_count(union, hybrid),
                matched_entity_count(union, overlap.partition),
            )
        )
    return tuple(matrix_rows), tuple(count_rows), tuple(pair_rows)


# ----------------------------------------------------------------------
# The batch path (fresh stores per run so every measurement starts cold)
# ----------------------------------------------------------------------
def store_path(jobs: int = 1) -> tuple:
    efo_store = VersionStore(
        EFOGenerator(scale=EFO_SCALE, seed=EFO_SEED, versions=EFO_VERSIONS)
    )
    efo_store.prepare(summaries=True, tokens=("trivial", "deblank"))
    pairs = [
        (source, target)
        for source in range(EFO_VERSIONS)
        for target in range(source, EFO_VERSIONS)
    ]

    def matrix_cell(pair):
        source, target = pair
        return (
            source,
            target,
            efo_store.aligned_edge_ratio(source, target, "trivial"),
            efo_store.aligned_edge_ratio(source, target, "deblank"),
        )

    matrix_rows = run_sharded(matrix_cell, pairs, jobs=jobs)

    def count_cell(pair):
        source, target = pair
        return (
            source,
            target,
            efo_store.aligned_edge_count(source, target, "deblank"),
        )

    count_rows = run_sharded(count_cell, pairs, jobs=jobs)

    gtopdb_store = VersionStore(
        GtoPdbGenerator(
            scale=GTOPDB_SCALE, seed=GTOPDB_SEED, versions=GTOPDB_VERSIONS
        )
    )
    gtopdb_store.prepare(summaries=True)

    def pair_cell(index):
        context = gtopdb_store.cell_context(index, index + 1)
        weighted, _trace = gtopdb_store.overlap_result(
            index, index + 1, AlignConfig(theta=THETA)
        )
        return (
            index,
            matched_entity_count(context.union, context.hybrid),
            matched_entity_count(context.union, weighted.partition),
        )

    pair_rows = run_sharded(pair_cell, range(GTOPDB_VERSIONS - 1), jobs=jobs)
    return tuple(matrix_rows), tuple(count_rows), tuple(pair_rows)


def _timed(function) -> tuple[float, tuple]:
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def test_parallel_runner_speedup(results_dir):
    """Acceptance gates for the batch-execution subsystem (store vs seed)."""
    seed_seconds, seed_result = _timed(seed_path)
    serial_seconds, serial_result = _timed(store_path)

    # Correctness before speed: the store path reproduces the seed path's
    # trivial/deblank/hybrid numbers exactly (they are theorems, not
    # heuristics).
    seed_matrix, seed_counts, seed_pairs = seed_result
    serial_matrix, serial_counts, serial_pairs = serial_result
    assert tuple(serial_matrix) == seed_matrix
    assert tuple(serial_counts) == seed_counts
    assert tuple(r[:2] for r in serial_pairs) == tuple(r[:2] for r in seed_pairs)

    serial_speedup = seed_seconds / serial_seconds
    if serial_speedup < max(REQUIRED_SERIAL_SPEEDUP, REQUIRED_END_TO_END_SPEEDUP):
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            seed_seconds = min(seed_seconds, _timed(seed_path)[0])
            serial_seconds = min(serial_seconds, _timed(store_path)[0])
        serial_speedup = seed_seconds / serial_seconds

    lines = [
        "Batch execution on the figure-matrix workload "
        f"(EFO {EFO_VERSIONS}x{EFO_VERSIONS} matrix @ scale {EFO_SCALE} + "
        f"GtoPdb consecutive pairs @ scale {GTOPDB_SCALE})",
        "",
        f"{'path':>24} {'seconds':>9} {'speedup':>8}",
        f"{'seed (per-cell rebuild)':>24} {seed_seconds:>9.3f} {'1.00':>8}",
        f"{'store, jobs=1':>24} {serial_seconds:>9.3f} {serial_speedup:>8.2f}",
        "",
        f"fork available: {fork_available()}",
    ]
    report = "\n".join(lines) + "\n"
    (results_dir / REPORT_PATH).write_text(report, encoding="utf-8")
    print()
    print(report)

    record_bench("parallel_runner/seed_path", seed_seconds, speedup=1.0)
    record_bench(
        "parallel_runner/store_batch", serial_seconds, speedup=serial_speedup,
        baseline_seconds=seed_seconds,
    )

    assert serial_speedup >= REQUIRED_SERIAL_SPEEDUP, (
        f"snapshot reuse alone gives {serial_speedup:.2f}x, below the "
        f"required {REQUIRED_SERIAL_SPEEDUP}x"
    )
    assert serial_speedup >= REQUIRED_END_TO_END_SPEEDUP, (
        f"end-to-end batch speedup {serial_speedup:.2f}x is below the "
        f"required {REQUIRED_END_TO_END_SPEEDUP}x"
    )


# ----------------------------------------------------------------------
# The shared-memory pool gate (jobs=N vs jobs=1 on one published store)
# ----------------------------------------------------------------------
def _fresh_shm_store() -> VersionStore:
    """A cold store over the (cached) shm workload generator.

    The generator is shared so graph synthesis is paid once per session;
    the store itself is rebuilt per measurement so every run derives its
    alignment artifacts from scratch — no measurement inherits another's
    warm caches.
    """
    generator = GENERATOR_FAMILIES[SHM_FAMILY].shared(
        scale=SHM_SCALE, seed=SHM_SEED, versions=SHM_VERSIONS
    )
    store = VersionStore(generator)
    store.prepare(summaries=True, tokens=("deblank",))
    return store


def _shm_measure(jobs: int) -> tuple[float, list]:
    pairs = [
        (source, target)
        for source in range(SHM_VERSIONS)
        for target in range(source, SHM_VERSIONS)
    ]
    store = _fresh_shm_store()
    config = AlignConfig(theta=THETA)
    started = time.perf_counter()
    # force=True pins the pool at the requested width even below the
    # economics threshold — the measurement *is* the point here.
    rows = run_store_cells(
        store, method_counts_cell, pairs,
        jobs=jobs, config=config, force=jobs > 1,
    )
    return time.perf_counter() - started, rows


def test_shm_pool_gate(results_dir):
    """jobs ∈ {1, 2, 4} over one published store: identical bytes, no
    leaked segments, and ≥ 2× at jobs=4 on machines with ≥ 4 CPUs."""
    assert shm_available(), "POSIX shared memory is required for this bench"

    seconds: dict[int, float] = {}
    results: dict[int, list] = {}
    for jobs in (1, 2, 4):
        seconds[jobs], results[jobs] = _shm_measure(jobs)

    # Byte-identity across every job count — the pool's determinism
    # contract, asserted unconditionally (CPU count is irrelevant to it).
    serial_blob = json.dumps(results[1], sort_keys=True)
    for jobs in (2, 4):
        assert json.dumps(results[jobs], sort_keys=True) == serial_blob, (
            f"jobs={jobs} results differ from serial"
        )

    # Cleanup contract: every pool unlinked its segments on close.
    leaked = list_segments()
    assert leaked == [], f"leaked shm segments: {leaked}"

    cpus = usable_cpus()
    gate_active = cpus >= POOL_GATE_CPUS
    speedup4 = seconds[1] / seconds[4]
    if gate_active and speedup4 < REQUIRED_POOL_SPEEDUP:
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            seconds[1] = min(seconds[1], _shm_measure(1)[0])
            seconds[4] = min(seconds[4], _shm_measure(4)[0])
        speedup4 = seconds[1] / seconds[4]

    lines = [
        "",
        "Shared-memory pool on the synthetic all-pairs workload "
        f"({SHM_FAMILY} @ scale {SHM_SCALE}, "
        f"{SHM_VERSIONS}x{SHM_VERSIONS} matrix)",
        "",
        f"{'path':>24} {'seconds':>9} {'speedup':>8}",
        f"{'store, jobs=1':>24} {seconds[1]:>9.3f} {'1.00':>8}",
        f"{'store, jobs=2':>24} {seconds[2]:>9.3f} "
        f"{seconds[1] / seconds[2]:>8.2f}",
        f"{'store, jobs=4':>24} {seconds[4]:>9.3f} {speedup4:>8.2f}",
        "",
        f"usable cpus: {cpus}",
        f"serial floor (>= {MIN_SERIAL_SECONDS:.0f}s): "
        f"{'met' if seconds[1] >= MIN_SERIAL_SECONDS else 'NOT met'} "
        f"({seconds[1]:.1f}s)",
        f"jobs=4 gate (>= {REQUIRED_POOL_SPEEDUP}x): "
        + (
            "ACTIVE"
            if gate_active
            else f"recorded only ({cpus} < {POOL_GATE_CPUS} usable CPUs — "
            "four workers cannot beat one on this machine)"
        ),
        "results byte-identical at jobs=1/2/4: True",
        "leaked shm segments: none",
    ]
    report = "\n".join(lines) + "\n"
    path = results_dir / REPORT_PATH
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report)
    print()
    print(report)

    record_bench(
        "parallel_runner/store_jobs1", seconds[1], speedup=1.0,
        jobs=1, cpus=cpus,
    )
    record_bench(
        "parallel_runner/store_jobs2", seconds[2],
        speedup=seconds[1] / seconds[2],
        baseline_seconds=seconds[1], jobs=2, cpus=cpus,
    )
    record_bench(
        "parallel_runner/store_jobs4", seconds[4], speedup=speedup4,
        baseline_seconds=seconds[1], jobs=4, cpus=cpus,
    )

    if gate_active:
        assert speedup4 >= REQUIRED_POOL_SPEEDUP, (
            f"jobs=4 gives {speedup4:.2f}x over jobs=1 on {cpus} CPUs, "
            f"below the required {REQUIRED_POOL_SPEEDUP}x"
        )
