"""Batch execution: snapshot reuse + process fan-out on a figure-matrix workload.

The workload is the evaluation's bread and butter: the EFO all-pairs
matrices (a Figure-10-style trivial + deblank ratio grid *and* a
Figure-11-style deblank count grid — two figures sharing one dataset,
exactly the cross-figure redundancy the store eliminates) plus a
Figure-13-style consecutive-pair sweep (hybrid + overlap counts over a
GtoPdb chain).  Three implementations are timed:

* **seed path** — the pre-batch per-cell implementation: every cell
  rebuilds the union, re-interns labels and re-runs the deblanking
  refinement from scratch (kept verbatim in this file as the baseline);
* **store path, jobs=1** — the :class:`VersionStore` batch path: per
  version artifacts are materialized once and cells compose them;
* **store path, jobs=4** — the same cells sharded over forked workers.

Gates (the acceptance criteria of the batch-execution change):

* snapshot reuse alone (jobs=1) is ≥ 1.3× over the seed path,
* end to end (best of jobs=1 / jobs=4) is ≥ 2× over the seed path,
* the parallel results are byte-identical to the serial ones.

A summary table is written to ``results/parallel_runner.txt`` and the
measurements are appended to ``results/bench.json``.
"""

from __future__ import annotations

import time

from repro.align import AlignConfig
from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.datasets import EFOGenerator, GtoPdbGenerator
from repro.evaluation.metrics import (
    aligned_edge_count,
    aligned_edge_ratio,
    matched_entity_count,
)
from repro.experiments.parallel import fork_available, run_sharded
from repro.experiments.store import VersionStore
from repro.model.union import combine
from repro.partition.interner import ColorInterner
from repro.similarity.overlap_alignment import overlap_partition

from .conftest import record_bench

EFO_SCALE, EFO_SEED, EFO_VERSIONS = 0.3, 777, 10
GTOPDB_SCALE, GTOPDB_SEED, GTOPDB_VERSIONS = 0.3, 7716, 4
THETA = 0.65

REQUIRED_SERIAL_SPEEDUP = 1.3
REQUIRED_END_TO_END_SPEEDUP = 2.0
PARALLEL_JOBS = 4


# ----------------------------------------------------------------------
# The seed (pre-batch) path, kept verbatim as the baseline
# ----------------------------------------------------------------------
def seed_path() -> tuple:
    """Per-cell rebuilds, exactly like the pre-VersionStore figures."""
    efo = EFOGenerator(scale=EFO_SCALE, seed=EFO_SEED, versions=EFO_VERSIONS)
    graphs = efo.graphs()
    matrix_rows = []
    for source in range(EFO_VERSIONS):
        for target in range(source, EFO_VERSIONS):
            # Figure-10-style cell: trivial + deblank ratios.
            union = combine(graphs[source], graphs[target])
            trivial_value = aligned_edge_ratio(
                union, trivial_partition(union, ColorInterner())
            )
            deblank_value = aligned_edge_ratio(
                union, deblank_partition(union, ColorInterner())
            )
            matrix_rows.append((source, target, trivial_value, deblank_value))
    count_rows = []
    for source in range(EFO_VERSIONS):
        for target in range(source, EFO_VERSIONS):
            # Figure-11-style cell: the absolute deblank count.  The seed
            # figures shared nothing, so the second figure re-built the
            # union and re-ran the deblank refinement on every pair.
            union = combine(graphs[source], graphs[target])
            count_rows.append(
                (
                    source,
                    target,
                    aligned_edge_count(
                        union, deblank_partition(union, ColorInterner())
                    ),
                )
            )

    gtopdb = GtoPdbGenerator(
        scale=GTOPDB_SCALE, seed=GTOPDB_SEED, versions=GTOPDB_VERSIONS
    )
    pair_rows = []
    for index in range(GTOPDB_VERSIONS - 1):
        union, _truth = gtopdb.combined(index, index + 1)
        interner = ColorInterner()
        hybrid = hybrid_partition(union, interner)
        overlap = overlap_partition(
            union, theta=THETA, interner=interner, base=hybrid
        )
        pair_rows.append(
            (
                index,
                matched_entity_count(union, hybrid),
                matched_entity_count(union, overlap.partition),
            )
        )
    return tuple(matrix_rows), tuple(count_rows), tuple(pair_rows)


# ----------------------------------------------------------------------
# The batch path (fresh stores per run so every measurement starts cold)
# ----------------------------------------------------------------------
def store_path(jobs: int) -> tuple:
    efo_store = VersionStore(
        EFOGenerator(scale=EFO_SCALE, seed=EFO_SEED, versions=EFO_VERSIONS)
    )
    efo_store.prepare(summaries=True, tokens=("trivial", "deblank"))
    pairs = [
        (source, target)
        for source in range(EFO_VERSIONS)
        for target in range(source, EFO_VERSIONS)
    ]

    def matrix_cell(pair):
        source, target = pair
        return (
            source,
            target,
            efo_store.aligned_edge_ratio(source, target, "trivial"),
            efo_store.aligned_edge_ratio(source, target, "deblank"),
        )

    matrix_rows = run_sharded(matrix_cell, pairs, jobs=jobs)

    def count_cell(pair):
        source, target = pair
        return (
            source,
            target,
            efo_store.aligned_edge_count(source, target, "deblank"),
        )

    count_rows = run_sharded(count_cell, pairs, jobs=jobs)

    gtopdb_store = VersionStore(
        GtoPdbGenerator(
            scale=GTOPDB_SCALE, seed=GTOPDB_SEED, versions=GTOPDB_VERSIONS
        )
    )
    gtopdb_store.prepare(summaries=True)

    def pair_cell(index):
        context = gtopdb_store.cell_context(index, index + 1)
        weighted, _trace = gtopdb_store.overlap_result(
            index, index + 1, AlignConfig(theta=THETA)
        )
        return (
            index,
            matched_entity_count(context.union, context.hybrid),
            matched_entity_count(context.union, weighted.partition),
        )

    pair_rows = run_sharded(pair_cell, range(GTOPDB_VERSIONS - 1), jobs=jobs)
    return tuple(matrix_rows), tuple(count_rows), tuple(pair_rows)


def _timed(function) -> tuple[float, tuple]:
    started = time.perf_counter()
    result = function()
    return time.perf_counter() - started, result


def test_parallel_runner_speedup(results_dir):
    """Acceptance gates for the batch-execution subsystem."""
    seed_seconds, seed_result = _timed(seed_path)
    serial_seconds, serial_result = _timed(lambda: store_path(jobs=1))
    parallel_seconds, parallel_result = _timed(
        lambda: store_path(jobs=PARALLEL_JOBS)
    )

    # Correctness before speed: the store path reproduces the seed path's
    # trivial/deblank/hybrid numbers exactly (they are theorems, not
    # heuristics), and parallel results are byte-identical to serial.
    seed_matrix, seed_counts, seed_pairs = seed_result
    serial_matrix, serial_counts, serial_pairs = serial_result
    assert tuple(serial_matrix) == seed_matrix
    assert tuple(serial_counts) == seed_counts
    assert tuple(r[:2] for r in serial_pairs) == tuple(r[:2] for r in seed_pairs)
    for part in range(3):
        assert tuple(parallel_result[part]) == tuple(serial_result[part])

    serial_speedup = seed_seconds / serial_seconds
    best_seconds = min(serial_seconds, parallel_seconds)
    end_to_end_speedup = seed_seconds / best_seconds

    if (
        serial_speedup < REQUIRED_SERIAL_SPEEDUP
        or end_to_end_speedup < REQUIRED_END_TO_END_SPEEDUP
    ):
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            seed_seconds = min(seed_seconds, _timed(seed_path)[0])
            serial_seconds = min(serial_seconds, _timed(lambda: store_path(1))[0])
            parallel_seconds = min(
                parallel_seconds, _timed(lambda: store_path(PARALLEL_JOBS))[0]
            )
        serial_speedup = seed_seconds / serial_seconds
        best_seconds = min(serial_seconds, parallel_seconds)
        end_to_end_speedup = seed_seconds / best_seconds

    lines = [
        "Batch execution on the figure-matrix workload "
        f"(EFO {EFO_VERSIONS}x{EFO_VERSIONS} matrix @ scale {EFO_SCALE} + "
        f"GtoPdb consecutive pairs @ scale {GTOPDB_SCALE})",
        "",
        f"{'path':>24} {'seconds':>9} {'speedup':>8}",
        f"{'seed (per-cell rebuild)':>24} {seed_seconds:>9.3f} {'1.00':>8}",
        f"{'store, jobs=1':>24} {serial_seconds:>9.3f} "
        f"{seed_seconds / serial_seconds:>8.2f}",
        f"{f'store, jobs={PARALLEL_JOBS}':>24} {parallel_seconds:>9.3f} "
        f"{seed_seconds / parallel_seconds:>8.2f}",
        "",
        f"fork available: {fork_available()}",
        "parallel results byte-identical to serial: True",
    ]
    report = "\n".join(lines) + "\n"
    (results_dir / "parallel_runner.txt").write_text(report, encoding="utf-8")
    print()
    print(report)

    record_bench("parallel_runner/seed_path", seed_seconds, speedup=1.0)
    record_bench(
        "parallel_runner/store_jobs1", serial_seconds, speedup=serial_speedup
    )
    record_bench(
        f"parallel_runner/store_jobs{PARALLEL_JOBS}",
        parallel_seconds,
        speedup=seed_seconds / parallel_seconds,
    )
    # Report-only (no gate): process fan-out currently buys ~nothing over
    # jobs=1 on this workload — each forked worker re-derives the store
    # artifacts its shard needs, so the grid's shared work is re-done per
    # worker.  Recording the ratio keeps the regression visible in the
    # performance trajectory until a shared-memory store lands; gating it
    # would go red on every run without telling anyone anything new.
    record_bench(
        f"parallel_runner/jobs{PARALLEL_JOBS}_vs_jobs1",
        parallel_seconds,
        speedup=serial_seconds / parallel_seconds,
    )

    assert serial_speedup >= REQUIRED_SERIAL_SPEEDUP, (
        f"snapshot reuse alone gives {serial_speedup:.2f}x, below the "
        f"required {REQUIRED_SERIAL_SPEEDUP}x"
    )
    assert end_to_end_speedup >= REQUIRED_END_TO_END_SPEEDUP, (
        f"end-to-end batch speedup {end_to_end_speedup:.2f}x is below the "
        f"required {REQUIRED_END_TO_END_SPEEDUP}x"
    )
