"""Micro benchmarks for the similarity layer.

* Levenshtein variants (plain / banded / bounded-normalized),
* our Hungarian implementation vs scipy's ``linear_sum_assignment``,
* the overlap heuristic's probe rules (paper ``⌈kθ⌉`` vs classical safe),
* σEdit matrix cost growth — the quadratic blow-up the overlap alignment
  exists to avoid.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.model import RDFGraph, combine, lit, uri
from repro.similarity.edit_distance import EditDistance
from repro.similarity.hungarian import solve_assignment
from repro.similarity.overlap import overlap_match
from repro.similarity.string_distance import (
    bounded_normalized_levenshtein,
    levenshtein,
    levenshtein_banded,
)

WORDS = [
    "experimental factor ontology class annotation",
    "guide to pharmacology ligand receptor",
    "category of wikipedia articles about chemistry",
]


@pytest.fixture(scope="module")
def string_pairs():
    rng = random.Random(7)
    pairs = []
    for _ in range(300):
        base = rng.choice(WORDS)
        edited = list(base)
        for _ in range(rng.randint(0, 6)):
            edited[rng.randrange(len(edited))] = rng.choice("abcdefgh ")
        pairs.append((base, "".join(edited)))
    return pairs


def test_levenshtein_plain(benchmark, string_pairs):
    total = benchmark(lambda: sum(levenshtein(a, b) for a, b in string_pairs))
    assert total >= 0


def test_levenshtein_banded(benchmark, string_pairs):
    total = benchmark(
        lambda: sum(levenshtein_banded(a, b, 6) for a, b in string_pairs)
    )
    assert total >= 0


def test_levenshtein_bounded_normalized(benchmark, string_pairs):
    total = benchmark(
        lambda: sum(bounded_normalized_levenshtein(a, b, 0.2) for a, b in string_pairs)
    )
    assert total >= 0


@pytest.fixture(scope="module")
def assignment_instances():
    rng = random.Random(11)
    return [
        [[rng.random() for _ in range(20)] for _ in range(20)] for _ in range(10)
    ]


def test_hungarian_ours(benchmark, assignment_instances):
    def run():
        return sum(solve_assignment(cost)[1] for cost in assignment_instances)

    total = benchmark(run)
    assert total >= 0


def test_hungarian_scipy(benchmark, assignment_instances):
    arrays = [np.array(cost) for cost in assignment_instances]

    def run():
        total = 0.0
        for arr in arrays:
            rows, cols = linear_sum_assignment(arr)
            total += float(arr[rows, cols].sum())
        return total

    total = benchmark(run)
    assert total >= 0


def test_hungarian_agreement(assignment_instances):
    for cost in assignment_instances:
        __, ours = solve_assignment(cost)
        arr = np.array(cost)
        rows, cols = linear_sum_assignment(arr)
        assert abs(ours - float(arr[rows, cols].sum())) < 1e-9


@pytest.fixture(scope="module")
def overlap_workload():
    rng = random.Random(13)
    vocabulary = [f"word{i}" for i in range(300)]
    characterizations = {}
    source_nodes = []
    target_nodes = []
    for i in range(400):
        base = frozenset(rng.sample(vocabulary, 8))
        source = f"a{i}"
        target = f"b{i}"
        source_nodes.append(source)
        target_nodes.append(target)
        characterizations[source] = base
        # The matching target shares most objects.
        replaced = set(base)
        replaced.discard(next(iter(base)))
        replaced.add(rng.choice(vocabulary))
        characterizations[target] = frozenset(replaced)
    return source_nodes, target_nodes, characterizations


@pytest.mark.parametrize("probe", ["paper", "safe"])
def test_overlap_match_probe_rules(benchmark, overlap_workload, probe):
    source_nodes, target_nodes, characterizations = overlap_workload

    def run():
        return overlap_match(
            source_nodes,
            target_nodes,
            0.65,
            characterizations.__getitem__,
            lambda n, m: 0.1,
            probe=probe,  # type: ignore[arg-type]
        )

    result = benchmark(run)
    assert len(result) > 0


@pytest.mark.parametrize("unaligned", [8, 16, 32])
def test_sigma_edit_matrix_growth(benchmark, unaligned):
    """σEdit cost grows quadratically with the number of unaligned nodes."""
    rng = random.Random(17)

    def graph(prefix: str) -> RDFGraph:
        g = RDFGraph()
        for i in range(unaligned):
            subject = uri(f"{prefix}-{i}")
            g.add(subject, uri("p"), lit(f"{prefix} value {i} {rng.random():.3f}"))
            g.add(subject, uri("q"), lit("shared anchor"))
        return g

    union = combine(graph("old"), graph("new"))

    def run():
        return EditDistance(union, max_rounds=5)

    edit = benchmark(run)
    assert edit.rounds_used >= 1
