"""Micro benchmarks for the core algorithms.

* batch vs incremental (worklist) partition refinement — the ablation for
  the optimization DESIGN.md calls out,
* the hash-consing interner,
* full-bisimulation throughput per edge.
"""

from __future__ import annotations

import pytest

from repro.core.bisimulation import bisimulation_partition
from repro.core.incremental import incremental_refine_fixpoint
from repro.core.refinement import bisim_refine_fixpoint
from repro.datasets import EFOGenerator
from repro.model import combine
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner


@pytest.fixture(scope="module")
def efo_union():
    generator = EFOGenerator(scale=0.6)
    return combine(generator.graph(6), generator.graph(7))


def test_batch_refinement(benchmark, efo_union):
    def run():
        interner = ColorInterner()
        return bisim_refine_fixpoint(
            efo_union, label_partition(efo_union, interner), None, interner
        )

    partition = benchmark(run)
    assert partition.num_classes > 1


def test_incremental_refinement(benchmark, efo_union):
    def run():
        interner = ColorInterner()
        return incremental_refine_fixpoint(
            efo_union, label_partition(efo_union, interner), None, interner
        )

    partition = benchmark(run)
    assert partition.num_classes > 1


def test_batch_vs_incremental_equivalent(efo_union):
    """The two refinement variants must produce the same partition."""
    interner_a = ColorInterner()
    batch = bisim_refine_fixpoint(
        efo_union, label_partition(efo_union, interner_a), None, interner_a
    )
    interner_b = ColorInterner()
    incremental = incremental_refine_fixpoint(
        efo_union, label_partition(efo_union, interner_b), None, interner_b
    )
    assert incremental.equivalent_to(batch)


def test_deblank_refinement_on_blanks_only(benchmark, efo_union):
    def run():
        interner = ColorInterner()
        return bisim_refine_fixpoint(
            efo_union,
            label_partition(efo_union, interner),
            efo_union.blanks(),
            interner,
        )

    partition = benchmark(run)
    assert partition.num_classes > 1


def test_interner_throughput(benchmark):
    def run():
        interner = ColorInterner()
        for i in range(20_000):
            interner.intern(("recolor", i % 500, ((i % 7, i % 11),)))
        return interner

    interner = benchmark(run)
    assert len(interner) <= 20_000


def test_full_bisimulation_partition(benchmark, efo_union):
    partition = benchmark(lambda: bisimulation_partition(efo_union))
    assert partition.num_classes > 1


@pytest.mark.parametrize("shards", [1, 8])
def test_sharded_refinement(benchmark, efo_union, shards):
    """BSP-style sharded refinement (the paper's MapReduce remark)."""
    from repro.core.sharded import sharded_refine_fixpoint

    def run():
        interner = ColorInterner()
        partition, __ = sharded_refine_fixpoint(
            efo_union,
            label_partition(efo_union, interner),
            None,
            interner,
            shards=shards,
        )
        return partition

    partition = benchmark(run)
    assert partition.num_classes > 1
