"""One benchmark per evaluation figure (paper Figures 9–16).

Each bench regenerates the figure's rows at a laptop scale, asserts the
paper's qualitative shape (see each experiment's ``check_shape``) and
writes the rendered report to ``results/figureNN.txt``.
"""

from __future__ import annotations

from repro.experiments import (
    assert_shape,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
)

from .conftest import run_once


def test_figure09_efo_dataset_stats(benchmark, results_dir):
    result = run_once(benchmark, figure09.run, scale=0.5)
    assert_shape(figure09.check_shape(result))
    result.save(results_dir)
    assert len(result.rows) == 10


def test_figure10_trivial_deblank_matrices(benchmark, results_dir):
    result = run_once(benchmark, figure10.run, scale=0.3)
    assert_shape(figure10.check_shape(result))
    result.save(results_dir)
    assert len(result.rows) == 100


def test_figure11_hybrid_overlap_gains(benchmark, results_dir):
    result = run_once(benchmark, figure11.run, scale=0.25)
    assert_shape(figure11.check_shape(result))
    result.save(results_dir)
    total_gain = sum(row["hybrid_gain"] + row["overlap_gain"] for row in result.rows)
    assert total_gain > 0


def test_figure12_gtopdb_dataset_stats(benchmark, results_dir):
    result = run_once(benchmark, figure12.run, scale=0.5)
    assert_shape(figure12.check_shape(result))
    result.save(results_dir)
    assert len(result.rows) == 10


def test_figure13_aligned_node_counts(benchmark, results_dir):
    result = run_once(benchmark, figure13.run, scale=0.4)
    assert_shape(figure13.check_shape(result))
    result.save(results_dir)
    # Who wins: Overlap tracks ground truth more closely than Hybrid.
    hybrid_gap = sum(abs(r["hybrid"] - r["gtopdb"]) for r in result.rows)
    overlap_gap = sum(abs(r["overlap"] - r["gtopdb"]) for r in result.rows)
    assert overlap_gap < hybrid_gap


def test_figure14_alignment_precision(benchmark, results_dir):
    result = run_once(benchmark, figure14.run, scale=0.4)
    assert_shape(figure14.check_shape(result))
    result.save(results_dir)


def test_figure15_threshold_sweep(benchmark, results_dir):
    result = run_once(benchmark, figure15.run, scale=0.4)
    assert_shape(figure15.check_shape(result))
    result.save(results_dir)
    assert len(result.rows) == 7


def test_figure16_scalability(benchmark, results_dir):
    result = run_once(benchmark, figure16.run, scale=0.5)
    assert_shape(figure16.check_shape(result))
    result.save(results_dir)
    assert len(result.rows) == 5
