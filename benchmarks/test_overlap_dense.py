"""Dense vs reference overlap pipeline (Algorithm 2) end to end.

PR 1 moved ``BisimRefine*`` onto flat arrays; this bench measures the
follow-up: the whole overlap alignment — weight iteration, alignment
tracking, candidate search — running against one CSR snapshot
(``repro/similarity/dense_overlap.py``).  Both engines run
``align_versions(method="overlap")`` on random mutation workloads built
from the shared builders of ``repro.datasets.mutations`` (blank
reshuffle + URI renames + literal curation edits + drops/inserts), the
partitions and traces are checked for parity, and the headline ``≥ 2.5×``
end-to-end speedup is enforced on the largest workload.  A summary table
is written to ``results/overlap_dense.txt`` — the numbers quoted in
``docs/performance.md`` come from this file.
"""

from __future__ import annotations

import time

import pytest

from repro.api import align_versions
from repro.core.dense import _np as _HAS_NUMPY
from repro.datasets.mutations import mutation_workload

#: Mutation-workload scales, smallest to largest; the last entry is "the
#: largest mutation workload" of the acceptance criterion.  The builder
#: is shared with tests/test_overlap_dense.py, so the workload the gate
#: measures is the workload the tier-1 parity tests exercise.
SCALES = (10, 20, 40)

#: Asserted lower bound for the dense overlap pipeline on the largest
#: workload (measured ≈ 4–5×; 2.5× leaves headroom for noisy runners).
REQUIRED_SPEEDUP = 2.5


@pytest.fixture(scope="module")
def workloads():
    return {scale: mutation_workload(2016, scale) for scale in SCALES}


def _run(workload, engine):
    source, target = workload
    return align_versions(source, target, method="overlap", engine=engine)


def _best_of_interleaved(first, second, repeats=3):
    """Best-of-N for two rivals, alternating runs so load drift cancels."""
    bests = [float("inf"), float("inf")]
    results = [None, None]
    for _ in range(repeats):
        for position, function in enumerate((first, second)):
            started = time.perf_counter()
            results[position] = function()
            bests[position] = min(bests[position], time.perf_counter() - started)
    return bests[0], results[0], bests[1], results[1]


@pytest.mark.parametrize("engine", ["reference", "dense"])
def test_overlap_engine(benchmark, workloads, engine):
    result = benchmark(lambda: _run(workloads[SCALES[0]], engine))
    assert result.matched_entities() > 0


@pytest.mark.parametrize("scale", SCALES)
def test_overlap_parity(workloads, scale):
    """Equivalent weighted partitions and identical round traces."""
    reference = _run(workloads[scale], "reference")
    dense = _run(workloads[scale], "dense")
    assert dense.partition.equivalent_to(reference.partition)
    assert dense.matched_entities() == reference.matched_entities()
    assert dense.trace.literal_matches == reference.trace.literal_matches
    assert dense.trace.rounds == reference.trace.rounds
    assert (
        dense.trace.stopped_by_round_limit
        == reference.trace.stopped_by_round_limit
    )
    for node in reference.partition:
        assert abs(
            dense.weighted.weight(node) - reference.weighted.weight(node)
        ) <= 1e-6, f"weights diverged at {node!r}"


def test_dense_overlap_speedup_on_largest_workload(workloads, results_dir):
    """Acceptance: ≥ 2.5× end to end on the largest mutation workload."""
    lines = [
        "Dense vs reference overlap pipeline "
        "(align_versions method=overlap, best of 3 interleaved runs)",
        "",
        f"{'scale':>6} {'nodes':>8} {'edges':>8} {'gens':>5} "
        f"{'reference_s':>12} {'dense_s':>9} {'speedup':>8}",
    ]
    speedups = {}
    for scale in SCALES:
        reference_time, reference, dense_time, dense = _best_of_interleaved(
            lambda: _run(workloads[scale], "reference"),
            lambda: _run(workloads[scale], "dense"),
        )
        assert dense.partition.equivalent_to(reference.partition)
        assert dense.trace.rounds == reference.trace.rounds
        speedups[scale] = reference_time / dense_time
        from .conftest import record_bench

        record_bench(
            f"overlap_dense/scale{scale}", dense_time, speedup=speedups[scale]
        )
        union = reference.graph
        lines.append(
            f"{scale:>6} {union.num_nodes:>8} {union.num_edges:>8} "
            f"{reference.trace.total_rounds:>5} {reference_time:>12.4f} "
            f"{dense_time:>9.4f} {speedups[scale]:>8.2f}"
        )
    report = "\n".join(lines) + "\n"
    (results_dir / "overlap_dense.txt").write_text(report, encoding="utf-8")
    print()
    print(report)
    if _HAS_NUMPY is None:
        pytest.skip(
            "the 2.5x bound is claimed for the NumPy-vectorized dense path; "
            "report recorded, assertion skipped on the pure-Python fallback"
        )
    largest = SCALES[-1]
    if speedups[largest] < REQUIRED_SPEEDUP:
        # One slow outlier on a noisy shared runner shouldn't go red:
        # re-measure the gated workload once with more repeats.
        reference_time, _, dense_time, _ = _best_of_interleaved(
            lambda: _run(workloads[largest], "reference"),
            lambda: _run(workloads[largest], "dense"),
            repeats=5,
        )
        speedups[largest] = max(speedups[largest], reference_time / dense_time)
    assert speedups[largest] >= REQUIRED_SPEEDUP, (
        f"dense overlap speedup {speedups[largest]:.2f}x on the largest "
        f"mutation workload (scale {largest}) is below the required "
        f"{REQUIRED_SPEEDUP}x"
    )
