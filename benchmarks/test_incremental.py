"""Incremental maintenance vs from-scratch refinement on a version chain.

The workload is the ``mutation_chain`` scenario family at 20 versions,
scaled up (2000 entities, DAG shape, blank-heavy) and evolved to
*archive-realistic* per-step deltas: each version renames/edits/inserts/
deletes a fraction of a percent of the graph, the regime real RDF
archives live in (weekly ontology releases change little) and the regime
incremental maintenance exists for.  The cycle-free operator mix keeps
blank cones acyclic, so the coarsening pass runs its canonical-form fast
path; the cyclic fallback is covered by the differential oracle's
``cycle_heavy`` scenario, not timed here.

Two implementations produce every per-version deblanking fixpoint:

* **scratch** — batch refinement per version (``deblank_fixpoint``),
* **maintained** — version ``k+1`` maintained from version ``k`` under
  the generator's identity-preserving delta (``maintain_or_batch`` with
  a chain interner and canonical-form cache — exactly the
  ``align_chain(incremental=True)`` / ``VersionStore`` wiring).

Gate: maintained is ≥ 2× faster per step, after asserting the two
produce equivalent partitions on every version.  The scenario's default
*stress* deltas (which rewrite ~half the graph per step, far past the
incremental crossover) are measured report-only for the trajectory.

Measurements are appended to ``results/bench.json`` as
``incremental/chain_*`` entries and a table is written to
``results/incremental.txt``.
"""

from __future__ import annotations

import time

from repro.core.maintain import deblank_fixpoint, maintain_or_batch
from repro.datasets.synthetic import SCENARIOS, SyntheticGenerator
from repro.partition.interner import ColorInterner

from .conftest import record_bench

VERSIONS = 20

#: The archive-realistic evolution of the pinned scenario: per-step
#: fractions around half a percent, no cycle-creating operators (rewire
#: re-points edges at random targets, merge can absorb an ancestor into
#: its descendant — both would break the DAG shape).
ARCHIVE_CONFIG = SCENARIOS["mutation_chain"].evolve(
    versions=VERSIONS,
    entities=2000,
    shape="dag",
    blank_density=0.6,
    literal_density=0.2,
    rename_fraction=0.01,
    split_fraction=0.002,
    merge_fraction=0.0,
    rewire_fraction=0.0,
    literal_edit_fraction=0.01,
    insert_fraction=0.005,
    delete_fraction=0.003,
)

#: The scenario's own deltas, unchanged apart from the chain length.
STRESS_CONFIG = SCENARIOS["mutation_chain"].evolve(versions=VERSIONS)

REQUIRED_SPEEDUP = 2.0


def _chain(config):
    generator = SyntheticGenerator(config=config)
    graphs = generator.graphs()
    deltas = [generator.version_changes(i) for i in range(len(graphs) - 1)]
    subsets = [graph.blanks() for graph in graphs]
    for graph in graphs:  # reverse index is shared by both paths
        graph.occurrence_index()
    return graphs, deltas, subsets


def _scratch_path(graphs):
    return [deblank_fixpoint(graph) for graph in graphs[1:]]


def _maintained_path(graphs, deltas, subsets):
    interner = ColorInterner()
    canon_cache: dict = {}
    fixpoints = []
    partition = deblank_fixpoint(graphs[0], interner)
    for index, delta in enumerate(deltas):
        partition = maintain_or_batch(
            graphs[index + 1],
            partition,
            delta,
            subsets[index + 1],
            interner,
            canon_cache=canon_cache,
        )
        fixpoints.append(partition)
    return fixpoints


def _per_step(function, steps):
    started = time.perf_counter()
    result = function()
    return (time.perf_counter() - started) / steps, result


def test_incremental_chain_speedup(results_dir):
    graphs, deltas, subsets = _chain(ARCHIVE_CONFIG)
    steps = len(deltas)

    scratch_step, scratch_parts = _per_step(lambda: _scratch_path(graphs), steps)
    maintained_step, maintained_parts = _per_step(
        lambda: _maintained_path(graphs, deltas, subsets), steps
    )

    # Correctness before speed: every maintained fixpoint is equivalent
    # (as a partition) to the from-scratch one — the same invariant the
    # differential oracle's incremental axis pins on the small scenarios.
    for maintained, scratch in zip(maintained_parts, scratch_parts):
        assert maintained.equivalent_to(scratch)

    speedup = scratch_step / maintained_step
    if speedup < REQUIRED_SPEEDUP:
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            scratch_step = min(
                scratch_step, _per_step(lambda: _scratch_path(graphs), steps)[0]
            )
            maintained_step = min(
                maintained_step,
                _per_step(lambda: _maintained_path(graphs, deltas, subsets), steps)[0],
            )
        speedup = scratch_step / maintained_step

    # Report-only: the stress deltas rewrite ~half the graph per step
    # (rename 20%, split/merge 8%, rewire 10%, ...).  The affected
    # closure then covers most of the subset and maintenance degenerates
    # to scratch work plus bookkeeping — below 1x is *expected* here.
    # Recording the ratio keeps the incremental crossover visible in the
    # performance trajectory; gating it would just pin a number the
    # algorithm does not promise.
    stress_graphs, stress_deltas, stress_subsets = _chain(STRESS_CONFIG)
    stress_scratch, _ = _per_step(
        lambda: _scratch_path(stress_graphs), len(stress_deltas)
    )
    stress_maintained, _ = _per_step(
        lambda: _maintained_path(stress_graphs, stress_deltas, stress_subsets),
        len(stress_deltas),
    )

    lines = [
        f"Incremental maintenance vs scratch ({VERSIONS} versions)",
        "",
        f"{'chain':>28} {'nodes':>6} {'ms/step':>9} {'speedup':>8}",
        f"{'archive deltas, scratch':>28} {graphs[-1].num_nodes:>6} "
        f"{scratch_step * 1e3:>9.3f} {'1.00':>8}",
        f"{'archive deltas, maintained':>28} {graphs[-1].num_nodes:>6} "
        f"{maintained_step * 1e3:>9.3f} {speedup:>8.2f}",
        f"{'stress deltas, scratch':>28} {stress_graphs[-1].num_nodes:>6} "
        f"{stress_scratch * 1e3:>9.3f} {'1.00':>8}",
        f"{'stress deltas, maintained':>28} {stress_graphs[-1].num_nodes:>6} "
        f"{stress_maintained * 1e3:>9.3f} "
        f"{stress_scratch / stress_maintained:>8.2f}",
        "",
        "maintained partitions equivalent to scratch: True",
    ]
    report = "\n".join(lines) + "\n"
    (results_dir / "incremental.txt").write_text(report, encoding="utf-8")
    print()
    print(report)

    record_bench("incremental/chain_archive_scratch", scratch_step, speedup=1.0)
    record_bench(
        "incremental/chain_archive_maintained", maintained_step, speedup=speedup
    )
    record_bench(
        "incremental/chain_stress_maintained",
        stress_maintained,
        speedup=stress_scratch / stress_maintained,
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental maintenance gives {speedup:.2f}x per step over "
        f"from-scratch refinement, below the required {REQUIRED_SPEEDUP}x"
    )
