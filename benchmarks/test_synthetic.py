"""Generator timings for the synthetic workload scenarios.

Each pinned differential scenario is generated once per run and its
wall-clock appended to ``results/bench.json`` (name
``synthetic/generate/<scenario>``), so the performance trajectory also
tracks the cost of the test-surface generator itself — a generator slow
enough to dominate the oracle would silently shrink scenario coverage.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SCENARIOS, SyntheticConfig, SyntheticGenerator

from .conftest import record_bench, run_once


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_generate_scenario(benchmark, results_dir, scenario):
    config = SCENARIOS[scenario]

    def generate():
        # A fresh (unshared) generator: the timing must measure the
        # build, not the process-wide memo.
        generator = SyntheticGenerator(config=config)
        return generator.graphs()

    graphs = run_once(benchmark, generate)
    assert len(graphs) == config.versions
    assert all(graph.num_edges > 0 for graph in graphs)
    record_bench(
        f"synthetic/generate/{scenario}", benchmark.stats.stats.mean
    )


def test_generate_scaled_history(benchmark, results_dir):
    """One larger history pins the scaling trend (still sub-second)."""
    config = SyntheticConfig(
        shape="scale_free", entities=300, versions=4, seed=7,
        split_fraction=0.05, merge_fraction=0.05,
    )

    def generate():
        return SyntheticGenerator(config=config).graphs()

    graphs = run_once(benchmark, generate)
    assert graphs[0].num_edges > 200
    record_bench("synthetic/generate/scale_free_300", benchmark.stats.stats.mean)
