"""Ablation benchmarks for design choices called out in DESIGN.md.

* ⊕ operator variants in the overlap alignment,
* overlap probe rule (paper vs safe) end-to-end,
* alignment-method ladder cost on the same input (what each level buys),
* similarity-flooding baseline vs σEdit on the same small input.
"""

from __future__ import annotations

import pytest

from repro.baselines.similarity_flooding import similarity_flooding
from repro.core.deblank import deblank_partition
from repro.core.hybrid import hybrid_partition
from repro.core.trivial import trivial_partition
from repro.datasets import GtoPdbGenerator
from repro.model import combine
from repro.oplus import OPERATORS
from repro.partition.alignment import align
from repro.partition.interner import ColorInterner
from repro.similarity.edit_distance import EditDistance
from repro.similarity.overlap_alignment import overlap_partition


@pytest.fixture(scope="module")
def gtopdb_union():
    generator = GtoPdbGenerator(scale=0.3, versions=5)
    union, truth = generator.combined(2, 3)
    return union, truth


@pytest.fixture(scope="module")
def small_union():
    generator = GtoPdbGenerator(scale=0.08, versions=3, seed=5)
    union, truth = generator.combined(0, 1)
    return union, truth


@pytest.mark.parametrize("method", ["trivial", "deblank", "hybrid", "overlap"])
def test_method_ladder_cost(benchmark, gtopdb_union, method):
    union, __ = gtopdb_union

    def run():
        interner = ColorInterner()
        if method == "trivial":
            return trivial_partition(union, interner)
        if method == "deblank":
            return deblank_partition(union, interner)
        if method == "hybrid":
            return hybrid_partition(union, interner)
        return overlap_partition(union, interner=interner).partition

    partition = benchmark(run)
    assert partition.num_classes > 1


@pytest.mark.parametrize("operator_name", sorted(OPERATORS))
def test_oplus_variants_in_overlap(benchmark, gtopdb_union, operator_name):
    union, truth = gtopdb_union
    operator = OPERATORS[operator_name]

    def run():
        interner = ColorInterner()
        return overlap_partition(union, interner=interner, operator=operator)

    weighted = benchmark(run)
    # Every variant must still produce a sound refinement of hybrid.
    assert weighted.partition.num_classes > 1


@pytest.mark.parametrize("probe", ["paper", "safe"])
def test_probe_rule_end_to_end(benchmark, gtopdb_union, probe):
    union, truth = gtopdb_union

    def run():
        interner = ColorInterner()
        return overlap_partition(union, interner=interner, probe=probe)  # type: ignore[arg-type]

    weighted = benchmark(run)
    alignment = align(union, weighted.partition)
    assert alignment.matched_class_count() > 0


def test_sigma_edit_reference(benchmark, small_union):
    union, __ = small_union
    edit = benchmark.pedantic(
        lambda: EditDistance(union, max_rounds=20),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    # rounds_used is 0 when hybrid already aligned every non-literal.
    assert edit.rounds_used >= 0


def test_similarity_flooding_baseline(benchmark, small_union):
    union, __ = small_union
    result = benchmark.pedantic(
        lambda: similarity_flooding(union, max_rounds=15),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.rounds >= 1
