"""Benchmark harness: one bench per paper figure plus micro/ablation benches."""
