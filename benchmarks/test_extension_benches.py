"""Benchmarks for the Section 6 extensions and the archive subsystem.

* hybrid vs context-aware hybrid vs keyed hybrid cost,
* the predicate-aware refinement pass (cost and benefit),
* archive construction and its compression on evolving datasets.
"""

from __future__ import annotations

import pytest

from repro.archive import VersionArchive
from repro.core.context import context_hybrid_partition
from repro.core.hybrid import hybrid_partition
from repro.core.keyed import keyed_hybrid_partition, predicate_key
from repro.datasets import EFOGenerator, GtoPdbGenerator
from repro.datasets.efo import EFO_DEFINITION
from repro.model.namespaces import RDFS_LABEL
from repro.partition.alignment import align
from repro.partition.interner import ColorInterner
from repro.partition.weighted import zero_weighted
from repro.similarity.predicate_alignment import refine_predicates

from .conftest import run_once


@pytest.fixture(scope="module")
def gtopdb_pair():
    generator = GtoPdbGenerator(scale=0.3, versions=4)
    return generator.combined(0, 1)


@pytest.fixture(scope="module")
def efo_graphs():
    return EFOGenerator(scale=0.3, versions=6).graphs()


def test_hybrid_plain(benchmark, gtopdb_pair):
    union, __ = gtopdb_pair
    partition = benchmark(lambda: hybrid_partition(union, ColorInterner()))
    assert partition.num_classes > 1


def test_hybrid_context_aware(benchmark, gtopdb_pair):
    union, __ = gtopdb_pair
    partition = benchmark(lambda: context_hybrid_partition(union, ColorInterner()))
    assert partition.num_classes > 1


def test_hybrid_keyed(benchmark, efo_graphs):
    from repro.model.union import combine

    union = combine(efo_graphs[0], efo_graphs[1])
    key = predicate_key([RDFS_LABEL, EFO_DEFINITION])
    partition = benchmark(
        lambda: keyed_hybrid_partition(union, key, ColorInterner())
    )
    assert partition.num_classes > 1


def test_predicate_refinement_pass(benchmark, gtopdb_pair):
    union, truth = gtopdb_pair
    interner = ColorInterner()
    base = hybrid_partition(union, interner)
    weighted = zero_weighted(base)

    refined = benchmark(
        lambda: refine_predicates(union, weighted, interner, theta=0.5)
    )
    # Benefit: strictly more exactly-aligned (1-1) classes than before.
    before = sum(
        1
        for sides in align(union, base).class_sides().values()
        if len(sides.source) == 1 and len(sides.target) == 1
    )
    after = sum(
        1
        for sides in align(union, refined.partition).class_sides().values()
        if len(sides.source) == 1 and len(sides.target) == 1
    )
    assert after >= before


def test_archive_build_efo(benchmark, efo_graphs, results_dir):
    archive = run_once(benchmark, VersionArchive.build, efo_graphs)
    stats = archive.stats(efo_graphs)
    assert stats.compression_ratio > 1.5
    # The paper's closing observation: triples mostly live and die with
    # their subject.
    assert stats.subject_cohesion > 0.5
    with open(results_dir / "archive_efo.txt", "w", encoding="utf-8") as handle:
        handle.write(
            "Archive (EFO-like, 6 versions)\n"
            f"naive triples:      {stats.naive_triples}\n"
            f"archived triples:   {stats.archived_triples}\n"
            f"compression ratio:  {stats.compression_ratio:.2f}x\n"
            f"contiguous:         {stats.contiguous_fraction:.3f}\n"
            f"subject cohesion:   {stats.subject_cohesion:.3f}\n"
            f"subject-grouped:    {archive.subject_grouped_size()} units\n"
        )


def test_archive_reconstruction(benchmark, efo_graphs):
    archive = VersionArchive.build(efo_graphs)
    graph = benchmark(lambda: archive.reconstruct(len(efo_graphs)))
    assert graph.num_edges == efo_graphs[-1].num_edges
