"""Dense vs reference refinement engine on the scalability workloads.

The dense engine's claim (ROADMAP: "as fast as the hardware allows") is
measured, not asserted: these benches time both engines on the synthetic
scalability workloads (EFO ontology version pairs, DBpedia category
pairs), check the partitions stay equivalent, and enforce the headline
``≥ 3×`` speedup on the largest workload.  A summary table is written to
``results/engine_dense.txt`` — the numbers quoted in
``docs/performance.md`` come from this file.

The workloads deliberately span both regimes discussed there:

* full-graph refinement with real depth (EFO pairs: blanks + curation
  edits force multi-round refinement) — the dense engine's home turf;
* small-subset refinement that converges in a couple of rounds (hybrid
  pipeline on mostly-aligned versions) — where the reference engine's
  lack of compaction overhead keeps it competitive.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dense import _np as _HAS_NUMPY, dense_refine_fixpoint
from repro.core.hybrid import hybrid_partition
from repro.core.refinement import FixpointStats, bisim_refine_fixpoint
from repro.datasets import EFOGenerator
from repro.model import combine
from repro.partition.coloring import label_partition
from repro.partition.interner import ColorInterner

#: EFO pair scales, smallest to largest; the last entry is "the largest
#: scalability workload" of the acceptance criterion.
SCALES = (0.5, 1.0, 3.0)

#: Asserted lower bound for the dense engine on the largest workload.
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def efo_pairs():
    """Combined graphs of the v9 -> v10 EFO pair at each scale."""
    pairs = {}
    for scale in SCALES:
        generator = EFOGenerator(scale=scale)
        pairs[scale] = combine(generator.graph(8), generator.graph(9))
    return pairs


def _run_reference(union):
    interner = ColorInterner()
    return bisim_refine_fixpoint(
        union, label_partition(union, interner), None, interner
    )


def _run_dense(union):
    interner = ColorInterner()
    return dense_refine_fixpoint(
        union, label_partition(union, interner), None, interner
    )


def _best_of_interleaved(first, second, repeats=5):
    """Best-of-N for two rivals, alternating runs so load drift cancels.

    Timing ratios are asserted below; interleaving means a background
    spike penalizes both engines rather than whichever ran second.
    """
    bests = [float("inf"), float("inf")]
    results = [None, None]
    for _ in range(repeats):
        for position, function in enumerate((first, second)):
            started = time.perf_counter()
            results[position] = function()
            bests[position] = min(bests[position], time.perf_counter() - started)
    return bests[0], results[0], bests[1], results[1]


@pytest.mark.parametrize("scale", SCALES)
def test_reference_engine(benchmark, efo_pairs, scale):
    partition = benchmark(lambda: _run_reference(efo_pairs[scale]))
    assert partition.num_classes > 1


@pytest.mark.parametrize("scale", SCALES)
def test_dense_engine(benchmark, efo_pairs, scale):
    partition = benchmark(lambda: _run_dense(efo_pairs[scale]))
    assert partition.num_classes > 1


def test_dense_speedup_on_largest_workload(efo_pairs, results_dir):
    """Acceptance: ≥ 3× on the largest scalability workload, with parity."""
    lines = [
        "Dense vs reference refinement engine (best of 5 interleaved runs)",
        "",
        f"{'scale':>6} {'nodes':>8} {'edges':>8} {'rounds':>6} "
        f"{'reference_s':>12} {'dense_s':>9} {'speedup':>8}",
    ]
    from .conftest import record_bench

    speedups = {}
    for scale in SCALES:
        union = efo_pairs[scale]
        reference_time, reference, dense_time, dense = _best_of_interleaved(
            lambda: _run_reference(union), lambda: _run_dense(union)
        )
        assert dense.equivalent_to(reference), f"engines diverged at scale {scale}"
        record_bench(
            f"engine_dense/scale{scale}", dense_time,
            speedup=reference_time / dense_time,
        )
        stats = FixpointStats()
        interner = ColorInterner()
        dense_refine_fixpoint(
            union, label_partition(union, interner), None, interner, stats=stats
        )
        speedups[scale] = reference_time / dense_time
        lines.append(
            f"{scale:>6} {union.num_nodes:>8} {union.num_edges:>8} "
            f"{stats.rounds:>6} {reference_time:>12.4f} {dense_time:>9.4f} "
            f"{speedups[scale]:>8.2f}"
        )
    report = "\n".join(lines) + "\n"
    (results_dir / "engine_dense.txt").write_text(report, encoding="utf-8")
    print()
    print(report)
    if _HAS_NUMPY is None:
        pytest.skip(
            "the 3x bound is claimed for the NumPy-vectorized dense path; "
            "report recorded, assertion skipped on the pure-Python fallback"
        )
    largest = SCALES[-1]
    if speedups[largest] < REQUIRED_SPEEDUP:
        # One slow outlier on a noisy shared runner shouldn't go red:
        # re-measure the gated workload once with more repeats.
        union = efo_pairs[largest]
        reference_time, _, dense_time, _ = _best_of_interleaved(
            lambda: _run_reference(union), lambda: _run_dense(union), repeats=10
        )
        speedups[largest] = max(
            speedups[largest], reference_time / dense_time
        )
    assert speedups[largest] >= REQUIRED_SPEEDUP, (
        f"dense engine speedup {speedups[largest]:.2f}x on the largest "
        f"workload (scale {largest}) is below the required "
        f"{REQUIRED_SPEEDUP}x"
    )


def test_hybrid_pipeline_parity_across_engines(efo_pairs):
    """The full hybrid pipeline stays equivalent under the dense engine.

    No speedup is asserted here on purpose: hybrid's refinement subsets on
    mostly-aligned versions are small and shallow, which is the regime
    where the reference engine's zero setup cost wins (documented in
    docs/performance.md).
    """
    union = efo_pairs[SCALES[0]]
    reference = hybrid_partition(union, ColorInterner())
    dense = hybrid_partition(union, ColorInterner(), engine="dense")
    assert dense.equivalent_to(reference)
