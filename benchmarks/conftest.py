"""Shared fixtures for the benchmark harness.

Every figure bench regenerates one paper figure (at a reduced scale),
asserts the paper's qualitative shape and saves the rendered report under
``results/``.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an expensive experiment exactly once (no repeat rounds)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
