"""Shared fixtures for the benchmark harness.

Every figure bench regenerates one paper figure (at a reduced scale),
asserts the paper's qualitative shape and saves the rendered report under
``results/``.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

BENCH_JSON = RESULTS_DIR / "bench.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_bench(
    name: str,
    seconds: float,
    speedup: float | None = None,
    baseline_seconds: float | None = None,
    jobs: int | None = None,
    cpus: int | None = None,
    k: int | None = None,
) -> bool:
    """Append one machine-readable measurement to ``results/bench.json``.

    The file is the seed of the performance trajectory (one entry per
    benchmark per run): ``[{"name", "seconds", "speedup"}, ...]``.
    ``speedup`` is the measured ratio for comparison benches and ``null``
    for plain timings.  Comparison benches additionally pass
    ``baseline_seconds`` (the denominator of the ratio), ``jobs``,
    ``cpus`` and the k-bisimulation round bound ``k`` —
    additive keys that let trajectory tooling distinguish a
    slower machine from a real regression; entries without them keep the
    historical shape, so old readers are unaffected.

    The append is best-effort by contract: a missing, corrupt or
    wrong-shaped ``bench.json`` (non-list JSON, non-dict entries, even a
    directory squatting on the path) is replaced by a fresh list, and an
    unreadable/unwritable target returns ``False`` instead of raising —
    a timing side channel must never crash the bench session producing
    it.  The tolerant append itself lives in the dependency-free
    :mod:`repro.benchlog`, shared with the differential oracle's CI
    entry point.
    """
    try:
        from repro.benchlog import append_bench_entry
    except Exception:  # even an import failure must not kill the session
        return False
    return append_bench_entry(
        BENCH_JSON, name, seconds, speedup,
        baseline_seconds=baseline_seconds, jobs=jobs, cpus=cpus, k=k,
    )


@pytest.fixture(autouse=True)
def _record_benchmark_timing(request):
    """Record every ``benchmark``-fixture timing into ``bench.json``."""
    yield
    benchmark = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return
    try:
        record_bench(request.node.name, stats.stats.mean)
    except (AttributeError, OSError):  # no timing ran, or results/ unwritable
        pass


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an expensive experiment exactly once (no repeat rounds)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
