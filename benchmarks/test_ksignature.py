"""k-bisimulation signature benches: Figure-15-style k-sweep + pool gate.

Two acceptance surfaces:

**k-sweep (report-only)** — the paper's Figure 15 plots alignment
quality against refinement effort; the hash-signature family makes that
axis explicit, so the sweep times ``kbisim`` at increasing ``k`` over
one scale-free union and records the class-count trajectory.  The
qualitative shape is asserted (class counts are non-decreasing in ``k``
and the converged sweep point matches the full-bisimulation fixpoint);
the timings themselves are recorded, never gated — a k-sweep on a
1-CPU box is a trajectory seed, not a race.  The intra-run shard pool
(:func:`~repro.experiments.ksig_shard.pooled_ksignature_partition`) is
also measured here at jobs ∈ {2, 4} and recorded without a gate: its
parent keeps the global interner and collision verifier, so its Amdahl
ceiling is workload-dependent by design.

**Cell-matrix pool gate** — the all-pairs ``kbisim`` count matrix
(:func:`~repro.experiments.cells.kbisim_counts_cell`) through the
shared-memory store pool: byte-identical rows at jobs ∈ {1, 2, 4}, no
leaked ``/dev/shm`` segments, and — on machines with ≥ 4 usable CPUs,
where the workload is sized so the serial matrix takes ≥ 5 s — jobs=4
is ≥ 2× over jobs=1.  On smaller machines a small matrix is run and the
ratio is recorded (with the ``cpus`` context field) but not gated.

A summary table is written to ``results/ksignature_sweep.txt`` and
every measurement is appended to ``results/bench.json`` with the
additive ``k``/``jobs`` keys.
"""

from __future__ import annotations

import json
import time

from repro.align import AlignConfig
from repro.core.bisimulation import bisimulation_partition
from repro.core.ksignature import SignatureStats, ksignature_partition
from repro.experiments.cells import kbisim_counts_cell
from repro.experiments.ksig_shard import (
    pooled_available,
    pooled_ksignature_partition,
)
from repro.experiments.parallel import run_store_cells, usable_cpus
from repro.experiments.shm import list_segments, shm_available
from repro.experiments.store import GENERATOR_FAMILIES, VersionStore
from repro.partition.interner import ColorInterner

from .conftest import record_bench

#: The sweep workload: one scale-free union big enough that per-round
#: cost is visible in the timings, small enough that the full sweep
#: stays a few seconds on one CPU.
SWEEP_FAMILY = "synthetic_scale_free"
SWEEP_SCALE, SWEEP_SEED = 60.0, 300
SWEEP_KS = (0, 1, 2, 4, 8, 16)

#: The cell-matrix gate workload (all-pairs kbisim counts).  The large
#: shape is only run where the jobs=4 gate is active; 1-CPU boxes run
#: the small shape and record the ratio without gating it.
MATRIX_FAMILY = "synthetic_scale_free"
MATRIX_SEED = 300
GATE_SCALE, GATE_VERSIONS = 14.0, 10
RECORD_SCALE, RECORD_VERSIONS = 2.0, 6
MATRIX_K = 8
MIN_SERIAL_SECONDS = 5.0
REQUIRED_POOL_SPEEDUP = 2.0
POOL_GATE_CPUS = 4

REPORT_PATH = "ksignature_sweep.txt"


def _sweep_union():
    generator = GENERATOR_FAMILIES[SWEEP_FAMILY].shared(
        scale=SWEEP_SCALE, seed=SWEEP_SEED, versions=2
    )
    store = VersionStore(generator)
    store.prepare()
    return store.union(0, 1), store.union_csr(0, 1)


def test_ksignature_k_sweep(results_dir):
    """Figure-15-style effort axis: classes(k) is non-decreasing and the
    converged point reproduces the full-bisimulation fixpoint."""
    union, csr = _sweep_union()

    rows = []
    for k in SWEEP_KS:
        stats = SignatureStats()
        started = time.perf_counter()
        partition = ksignature_partition(
            union, ColorInterner(), k=k, engine="dense", csr=csr, stats=stats
        )
        seconds = time.perf_counter() - started
        rows.append((k, seconds, stats.rounds, stats.converged, partition))

    # Qualitative shape: deeper sweeps only ever split classes.
    class_counts = [len(partition.classes()) for *_, partition in rows]
    assert class_counts == sorted(class_counts)
    # The converged tail of the sweep *is* the fixpoint.
    final_k, _, _, converged, final_partition = rows[-1]
    assert converged, f"sweep did not converge by k={final_k}"
    assert final_partition.equivalent_to(bisimulation_partition(union))

    lines = [
        "k-signature sweep on one scale-free union "
        f"({SWEEP_FAMILY} @ scale {SWEEP_SCALE}, {union.num_nodes} nodes)",
        "",
        f"{'k':>4} {'seconds':>9} {'rounds':>7} {'classes':>8} {'converged':>10}",
    ]
    for (k, seconds, rounds, converged, _), classes in zip(rows, class_counts):
        lines.append(
            f"{k:>4} {seconds:>9.3f} {rounds:>7} {classes:>8} {str(converged):>10}"
        )
        record_bench(f"ksignature/sweep_k{k}", seconds, jobs=1, k=k)

    # The intra-run shard pool, recorded (not gated) at the deepest k.
    if pooled_available():
        serial_seconds = rows[-1][1]
        lines += ["", f"{'shard pool':>12} {'seconds':>9} {'speedup':>8}"]
        for jobs in (2, 4):
            started = time.perf_counter()
            pooled = pooled_ksignature_partition(
                union, ColorInterner(), k=final_k, engine="dense",
                csr=csr, jobs=jobs,
            )
            pooled_seconds = time.perf_counter() - started
            assert pooled.as_dict() == final_partition.as_dict()
            speedup = serial_seconds / pooled_seconds
            lines.append(f"{f'jobs={jobs}':>12} {pooled_seconds:>9.3f} {speedup:>8.2f}")
            record_bench(
                f"ksignature/shard_pool_jobs{jobs}", pooled_seconds,
                speedup=speedup, baseline_seconds=serial_seconds,
                jobs=jobs, cpus=usable_cpus(), k=final_k,
            )
        assert list_segments() == []

    report = "\n".join(lines) + "\n"
    (results_dir / REPORT_PATH).write_text(report, encoding="utf-8")
    print()
    print(report)


def _fresh_matrix_store(scale: float, versions: int) -> VersionStore:
    generator = GENERATOR_FAMILIES[MATRIX_FAMILY].shared(
        scale=scale, seed=MATRIX_SEED, versions=versions
    )
    store = VersionStore(generator)
    store.prepare()
    return store


def _matrix_measure(scale: float, versions: int, jobs: int) -> tuple[float, list]:
    pairs = [
        (source, target)
        for source in range(versions)
        for target in range(source, versions)
    ]
    store = _fresh_matrix_store(scale, versions)
    config = AlignConfig(method="kbisim", engine="dense", k=MATRIX_K)
    started = time.perf_counter()
    rows = run_store_cells(
        store, kbisim_counts_cell, pairs,
        jobs=jobs, config=config, force=jobs > 1,
    )
    return time.perf_counter() - started, rows


def test_kbisim_matrix_pool_gate(results_dir):
    """All-pairs kbisim counts through the store pool: identical rows at
    jobs ∈ {1, 2, 4}, no leaked segments, ≥ 2× at jobs=4 on ≥ 4 CPUs."""
    assert shm_available(), "POSIX shared memory is required for this bench"

    cpus = usable_cpus()
    gate_active = cpus >= POOL_GATE_CPUS
    scale, versions = (
        (GATE_SCALE, GATE_VERSIONS) if gate_active
        else (RECORD_SCALE, RECORD_VERSIONS)
    )

    seconds: dict[int, float] = {}
    results: dict[int, list] = {}
    for jobs in (1, 2, 4):
        seconds[jobs], results[jobs] = _matrix_measure(scale, versions, jobs)

    serial_blob = json.dumps(results[1], sort_keys=True)
    for jobs in (2, 4):
        assert json.dumps(results[jobs], sort_keys=True) == serial_blob, (
            f"jobs={jobs} kbisim matrix differs from serial"
        )
    leaked = list_segments()
    assert leaked == [], f"leaked shm segments: {leaked}"

    speedup4 = seconds[1] / seconds[4]
    if gate_active and speedup4 < REQUIRED_POOL_SPEEDUP:
        # One noisy measurement should not go red: best-of-3 re-measure.
        for _ in range(2):
            seconds[1] = min(seconds[1], _matrix_measure(scale, versions, 1)[0])
            seconds[4] = min(seconds[4], _matrix_measure(scale, versions, 4)[0])
        speedup4 = seconds[1] / seconds[4]

    lines = [
        "",
        "All-pairs kbisim count matrix through the store pool "
        f"({MATRIX_FAMILY} @ scale {scale}, {versions}x{versions} matrix, "
        f"k={MATRIX_K})",
        "",
        f"{'path':>24} {'seconds':>9} {'speedup':>8}",
        f"{'store, jobs=1':>24} {seconds[1]:>9.3f} {'1.00':>8}",
        f"{'store, jobs=2':>24} {seconds[2]:>9.3f} "
        f"{seconds[1] / seconds[2]:>8.2f}",
        f"{'store, jobs=4':>24} {seconds[4]:>9.3f} {speedup4:>8.2f}",
        "",
        f"usable cpus: {cpus}",
        f"serial floor (>= {MIN_SERIAL_SECONDS:.0f}s): "
        f"{'met' if seconds[1] >= MIN_SERIAL_SECONDS else 'NOT met'} "
        f"({seconds[1]:.1f}s)",
        f"jobs=4 gate (>= {REQUIRED_POOL_SPEEDUP}x): "
        + (
            "ACTIVE"
            if gate_active
            else f"recorded only ({cpus} < {POOL_GATE_CPUS} usable CPUs — "
            "four workers cannot beat one on this machine)"
        ),
        "results byte-identical at jobs=1/2/4: True",
        "leaked shm segments: none",
    ]
    report = "\n".join(lines) + "\n"
    path = results_dir / REPORT_PATH
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(report)
    print()
    print(report)

    record_bench(
        "ksignature/matrix_jobs1", seconds[1], speedup=1.0,
        jobs=1, cpus=cpus, k=MATRIX_K,
    )
    for jobs in (2, 4):
        record_bench(
            f"ksignature/matrix_jobs{jobs}", seconds[jobs],
            speedup=seconds[1] / seconds[jobs],
            baseline_seconds=seconds[1], jobs=jobs, cpus=cpus, k=MATRIX_K,
        )

    if gate_active:
        assert speedup4 >= REQUIRED_POOL_SPEEDUP, (
            f"jobs=4 gives {speedup4:.2f}x over jobs=1 on {cpus} CPUs, "
            f"below the required {REQUIRED_POOL_SPEEDUP}x"
        )
